// Cluster-simulator tests: event ordering, queueing sanity against M/M/1
// and M/D/1 theory, technique semantics (reissue hedging, partial-execution
// deadline, AccuracyTrader latency bound), interference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "sim/arrivals.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "sim/interference.h"

namespace at::sim {
namespace {

TEST(EventQueueTest, TimeOrdering) {
  EventQueue q;
  q.push(5.0, EventKind::kArrival, 1);
  q.push(1.0, EventKind::kArrival, 2);
  q.push(3.0, EventKind::kArrival, 3);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, FifoTieBreak) {
  EventQueue q;
  q.push(1.0, EventKind::kArrival, 10);
  q.push(1.0, EventKind::kServiceComplete, 20);
  q.push(1.0, EventKind::kArrival, 30);
  EXPECT_EQ(q.pop().a, 10u);
  EXPECT_EQ(q.pop().a, 20u);
  EXPECT_EQ(q.pop().a, 30u);
}

TEST(EventQueueTest, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(Arrivals, PoissonRateMatches) {
  common::Rng rng(3);
  const auto t = poisson_arrivals(50.0, 200.0, rng);
  EXPECT_NEAR(static_cast<double>(t.size()) / 200.0, 50.0, 2.5);
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  for (double x : t) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 200.0);
  }
}

TEST(Arrivals, NhppTracksRateFunction) {
  common::Rng rng(5);
  // Rate 10 in the first half, 40 in the second half.
  const auto rate = [](double t) { return t < 100.0 ? 10.0 : 40.0; };
  const auto t = nhpp_arrivals(rate, 40.0, 200.0, rng);
  const auto half =
      std::lower_bound(t.begin(), t.end(), 100.0) - t.begin();
  EXPECT_NEAR(static_cast<double>(half) / 100.0, 10.0, 1.5);
  EXPECT_NEAR(static_cast<double>(t.size() - half) / 100.0, 40.0, 3.0);
}

TEST(Arrivals, NhppRejectsRateAboveBound) {
  common::Rng rng(7);
  EXPECT_THROW(
      nhpp_arrivals([](double) { return 100.0; }, 10.0, 10.0, rng),
      std::invalid_argument);
}

TEST(Arrivals, UniformSpacing) {
  const auto t = uniform_arrivals(10.0, 1.0);
  ASSERT_EQ(t.size(), 10u);
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_NEAR(t[i] - t[i - 1], 0.1, 1e-12);
}

TEST(Interference, DisabledIsUnity) {
  InterferenceConfig cfg;
  cfg.enabled = false;
  InterferenceTimeline tl(cfg, 4, 1);
  EXPECT_DOUBLE_EQ(tl.slowdown(0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(tl.busy_fraction(0, 1000.0), 0.0);
}

TEST(Interference, SlowdownAlwaysAtLeastOne) {
  InterferenceConfig cfg;
  InterferenceTimeline tl(cfg, 2, 9);
  for (double t = 0.0; t < 500.0; t += 3.7) {
    EXPECT_GE(tl.slowdown(0, t), 1.0);
    EXPECT_LE(tl.slowdown(0, t), cfg.cpu_slowdown_max);
  }
}

TEST(Interference, DeterministicPerSeed) {
  InterferenceConfig cfg;
  InterferenceTimeline a(cfg, 2, 11), b(cfg, 2, 11);
  for (double t = 0.0; t < 200.0; t += 1.3)
    EXPECT_DOUBLE_EQ(a.slowdown(1, t), b.slowdown(1, t));
}

TEST(Interference, NodesAreIndependent) {
  InterferenceConfig cfg;
  InterferenceTimeline tl(cfg, 2, 13);
  int differs = 0;
  for (double t = 0.0; t < 400.0; t += 2.1)
    differs += (tl.slowdown(0, t) != tl.slowdown(1, t));
  EXPECT_GT(differs, 10);
}

TEST(Interference, BusyFractionReasonable) {
  InterferenceConfig cfg;  // mean idle 12s, median job ~3.3s
  InterferenceTimeline tl(cfg, 1, 15);
  const double busy = tl.busy_fraction(0, 5000.0);
  EXPECT_GT(busy, 0.05);
  EXPECT_LT(busy, 0.8);
}

// --- ClusterSim ------------------------------------------------------------

std::vector<ComponentProfile> flat_profiles(std::size_t n,
                                            std::uint32_t points,
                                            std::uint32_t groups) {
  std::vector<ComponentProfile> out(n);
  for (auto& p : out) {
    p.num_points = points;
    p.group_sizes.assign(groups, points / groups);
  }
  return out;
}

SimConfig quiet_config(std::size_t n_comp = 4) {
  SimConfig cfg;
  cfg.num_components = n_comp;
  cfg.num_nodes = 2;
  cfg.interference.enabled = false;
  cfg.node_speed_min = 1.0;
  cfg.node_speed_max = 1.0;
  cfg.base_overhead_ms = 0.0;
  cfg.us_per_point = 100.0;  // 10k points -> 1000ms; 1k -> 100ms
  cfg.session_length_s = 1e9;
  return cfg;
}

TEST(ClusterSim, RejectsBadSetup) {
  SimConfig cfg = quiet_config(2);
  EXPECT_THROW(ClusterSim(cfg, flat_profiles(3, 100, 4)),
               std::invalid_argument);
  EXPECT_THROW(ClusterSim(cfg, flat_profiles(2, 0, 4)),
               std::invalid_argument);
}

TEST(ClusterSim, DeterministicServiceTimesAtZeroLoad) {
  // One request, idle system: latency = work = points * us_per_point.
  SimConfig cfg = quiet_config(4);
  cfg.us_per_point = 10.0;  // 1000 pts -> 10 ms
  ClusterSim sim(cfg, flat_profiles(4, 1000, 10));
  const auto r = sim.run(core::Technique::kBasic, {0.0});
  EXPECT_EQ(r.requests, 1u);
  EXPECT_EQ(r.subops, 4u);
  EXPECT_NEAR(r.subop_latency_ms.percentile(100), 10.0, 1e-9);
  EXPECT_NEAR(r.request_latency_ms.percentile(100), 10.0, 1e-9);
}

TEST(ClusterSim, MeanServiceHelpers) {
  SimConfig cfg = quiet_config(2);
  cfg.us_per_point = 10.0;
  cfg.synopsis_point_factor = 2.0;
  ClusterSim sim(cfg, flat_profiles(2, 1000, 10));
  EXPECT_NEAR(sim.mean_exact_service_ms(), 10.0, 1e-12);
  EXPECT_NEAR(sim.mean_synopsis_service_ms(), 0.2, 1e-12);
}

TEST(ClusterSim, MM1WaitMatchesTheory) {
  // Single component, Poisson arrivals, deterministic service (M/D/1):
  // mean wait W = rho * s / (2 (1 - rho)); mean latency = W + s.
  SimConfig cfg = quiet_config(1);
  cfg.us_per_point = 10.0;  // service 10ms for 1000 points
  ClusterSim sim(cfg, flat_profiles(1, 1000, 10));
  common::Rng rng(21);
  const double rate = 50.0;  // rho = 0.5
  const auto arrivals = poisson_arrivals(rate, 400.0, rng);
  const auto r = sim.run(core::Technique::kBasic, arrivals);
  const double s = 0.010, rho = rate * s;
  const double expect_ms = (s + rho * s / (2.0 * (1.0 - rho))) * 1e3;
  EXPECT_NEAR(r.subop_latency_ms.mean(), expect_ms, expect_ms * 0.15);
}

TEST(ClusterSim, OverloadGrowsUnboundedQueues) {
  // rho > 1: tail latency must vastly exceed the service time and grow
  // with the horizon (the Table 1 "Basic" failure mode).
  SimConfig cfg = quiet_config(1);
  cfg.us_per_point = 100.0;  // 100ms service
  ClusterSim sim(cfg, flat_profiles(1, 1000, 10));
  common::Rng rng(22);
  const auto short_run =
      sim.run(core::Technique::kBasic, poisson_arrivals(20.0, 30.0, rng));
  common::Rng rng2(22);
  const auto long_run =
      sim.run(core::Technique::kBasic, poisson_arrivals(20.0, 60.0, rng2));
  EXPECT_GT(short_run.p999_component_ms(), 500.0);
  EXPECT_GT(long_run.p999_component_ms(),
            short_run.p999_component_ms() * 1.5);
}

TEST(ClusterSim, AccuracyTraderLatencyPinnedNearDeadline) {
  // Even under heavy overload for exact processing, AT sub-op latency must
  // stay near deadline + synopsis slack.
  SimConfig cfg = quiet_config(4);
  cfg.us_per_point = 100.0;   // exact = 200ms -> overload at 20 rps
  cfg.deadline_ms = 100.0;
  ClusterSim sim(cfg, flat_profiles(4, 2000, 20));
  common::Rng rng(23);
  const auto arrivals = poisson_arrivals(30.0, 60.0, rng);
  const auto r = sim.run(core::Technique::kAccuracyTrader, arrivals);
  // Synopsis cost: 20 groups * 100us * 2 = 4ms. Queue can only hold a few
  // synopsis-sized services; p99.9 stays within a small multiple of the
  // deadline rather than exploding to seconds.
  EXPECT_LT(r.p999_component_ms(), 3.0 * cfg.deadline_ms);
  const auto basic = sim.run(core::Technique::kBasic, arrivals);
  EXPECT_GT(basic.p999_component_ms(), 10.0 * r.p999_component_ms());
}

TEST(ClusterSim, AccuracyTraderProcessesFewerSetsUnderLoad) {
  SimConfig cfg = quiet_config(2);
  cfg.us_per_point = 50.0;
  cfg.deadline_ms = 100.0;
  cfg.detail_every = 1;
  ClusterSim sim(cfg, flat_profiles(2, 2000, 20));
  common::Rng rng(25);
  const auto light =
      sim.run(core::Technique::kAccuracyTrader,
              poisson_arrivals(2.0, 30.0, rng));
  common::Rng rng2(25);
  const auto heavy =
      sim.run(core::Technique::kAccuracyTrader,
              poisson_arrivals(40.0, 30.0, rng2));
  auto mean_sets = [](const SimResult& r) {
    double acc = 0.0;
    std::size_t n = 0;
    for (const auto& d : r.details)
      for (const auto& o : d.outcomes) {
        acc += o.sets;
        ++n;
      }
    return acc / static_cast<double>(n);
  };
  EXPECT_GT(mean_sets(light), mean_sets(heavy));
}

TEST(ClusterSim, ImaxCapsSets) {
  SimConfig cfg = quiet_config(1);
  cfg.us_per_point = 1.0;  // trivially fast: everything fits the deadline
  cfg.imax = 3;
  cfg.detail_every = 1;
  ClusterSim sim(cfg, flat_profiles(1, 1000, 10));
  const auto r = sim.run(core::Technique::kAccuracyTrader, {0.0, 0.1});
  for (const auto& d : r.details)
    for (const auto& o : d.outcomes) EXPECT_LE(o.sets, 3u);
}

TEST(ClusterSim, PartialExecutionLatencyIsDeadline) {
  SimConfig cfg = quiet_config(3);
  cfg.us_per_point = 100.0;
  cfg.deadline_ms = 80.0;
  ClusterSim sim(cfg, flat_profiles(3, 1500, 15));
  common::Rng rng(26);
  const auto r = sim.run(core::Technique::kPartialExecution,
                         poisson_arrivals(20.0, 20.0, rng));
  EXPECT_NEAR(r.request_latency_ms.percentile(100), 80.0, 1e-9);
  EXPECT_NEAR(r.request_latency_ms.percentile(50), 80.0, 1e-9);
}

TEST(ClusterSim, PartialExecutionIncludedFlagsTrackLoad) {
  SimConfig cfg = quiet_config(2);
  cfg.us_per_point = 50.0;  // exact 100ms vs deadline 100ms
  cfg.deadline_ms = 100.0;
  cfg.detail_every = 1;
  ClusterSim sim(cfg, flat_profiles(2, 2000, 10));
  common::Rng rng(27);
  auto included_fraction = [](const SimResult& r) {
    std::size_t inc = 0, total = 0;
    for (const auto& d : r.details)
      for (const auto& o : d.outcomes) {
        inc += o.included;
        ++total;
      }
    return static_cast<double>(inc) / static_cast<double>(total);
  };
  const auto light = sim.run(core::Technique::kPartialExecution,
                             poisson_arrivals(1.0, 30.0, rng));
  common::Rng rng2(27);
  const auto heavy = sim.run(core::Technique::kPartialExecution,
                             poisson_arrivals(30.0, 30.0, rng2));
  EXPECT_GT(included_fraction(light), 0.4);
  EXPECT_LT(included_fraction(heavy), 0.2);
  EXPECT_GT(included_fraction(light), included_fraction(heavy));
}

TEST(ClusterSim, ReissueDispatchesReplicasAndHelpsUnderVariance) {
  SimConfig cfg = quiet_config(8);
  cfg.us_per_point = 20.0;  // 40ms exact
  cfg.interference.enabled = true;  // variance source
  cfg.num_nodes = 4;
  ClusterSim sim(cfg, flat_profiles(8, 2000, 20));
  common::Rng rng(28);
  const auto arrivals = poisson_arrivals(4.0, 120.0, rng);
  const auto reissue = sim.run(core::Technique::kRequestReissue, arrivals);
  const auto basic = sim.run(core::Technique::kBasic, arrivals);
  EXPECT_GT(reissue.reissues, 0u);
  // Hedging should not make the tail worse at light load.
  EXPECT_LE(reissue.p999_component_ms(),
            basic.p999_component_ms() * 1.05 + 1.0);
}

TEST(ClusterSim, ReissueAccountingConsistent) {
  SimConfig cfg = quiet_config(4);
  cfg.us_per_point = 50.0;
  cfg.interference.enabled = true;
  ClusterSim sim(cfg, flat_profiles(4, 1000, 10));
  common::Rng rng(29);
  const auto r = sim.run(core::Technique::kRequestReissue,
                         poisson_arrivals(10.0, 60.0, rng));
  EXPECT_LE(r.reissue_wins, r.reissues);
  EXPECT_LE(r.replica_cancels, r.reissues);
  // Every logical sub-op completes exactly once.
  EXPECT_EQ(r.subops, r.requests * 4);
}

TEST(ClusterSim, SubopCountExact) {
  SimConfig cfg = quiet_config(5);
  ClusterSim sim(cfg, flat_profiles(5, 100, 5));
  const auto r = sim.run(core::Technique::kBasic, {0.0, 0.5, 1.0});
  EXPECT_EQ(r.requests, 3u);
  EXPECT_EQ(r.subops, 15u);
  EXPECT_EQ(r.subop_latency_ms.count(), 15u);
  EXPECT_EQ(r.request_latency_ms.count(), 3u);
}

TEST(ClusterSim, SessionSlicing) {
  SimConfig cfg = quiet_config(1);
  cfg.session_length_s = 10.0;
  cfg.us_per_point = 1.0;
  ClusterSim sim(cfg, flat_profiles(1, 100, 5));
  std::vector<double> arrivals;
  for (double t = 0.5; t < 35.0; t += 1.0) arrivals.push_back(t);
  const auto r = sim.run(core::Technique::kBasic, arrivals);
  ASSERT_EQ(r.sessions.size(), 4u);
  EXPECT_EQ(r.sessions[0].requests, 10u);
  EXPECT_EQ(r.sessions[3].requests, 5u);
  std::size_t total = 0;
  for (const auto& s : r.sessions) total += s.requests;
  EXPECT_EQ(total, r.requests);
}

TEST(ClusterSim, DetailSampling) {
  SimConfig cfg = quiet_config(2);
  cfg.detail_every = 3;
  ClusterSim sim(cfg, flat_profiles(2, 100, 5));
  std::vector<double> arrivals;
  for (int i = 0; i < 9; ++i) arrivals.push_back(i * 0.1);
  const auto r = sim.run(core::Technique::kBasic, arrivals);
  EXPECT_EQ(r.details.size(), 3u);  // ids 0, 3, 6
  for (const auto& d : r.details) {
    EXPECT_EQ(d.outcomes.size(), 2u);
    EXPECT_EQ(d.request_id % 3, 0u);
  }
}

TEST(ClusterSim, IdenticalSeedsGiveIdenticalRuns) {
  SimConfig cfg = quiet_config(3);
  cfg.interference.enabled = true;
  ClusterSim sim(cfg, flat_profiles(3, 500, 10));
  common::Rng rng(31);
  const auto arrivals = poisson_arrivals(5.0, 30.0, rng);
  const auto a = sim.run(core::Technique::kBasic, arrivals);
  const auto b = sim.run(core::Technique::kBasic, arrivals);
  EXPECT_DOUBLE_EQ(a.p999_component_ms(), b.p999_component_ms());
  EXPECT_DOUBLE_EQ(a.request_latency_ms.mean(), b.request_latency_ms.mean());
}

TEST(ClusterSim, AccuracyTraderAnalyticLatencyBound) {
  // Deterministic setting (no interference, unit speeds): an AT sub-op's
  // latency can never exceed
  //   wait + overhead + synopsis + (deadline - elapsed@start) + one set
  // and since stage 2 stops once elapsed >= deadline, the absolute bound is
  //   deadline + overhead + synopsis + max_set_cost
  // for any request whose wait was below the deadline — and
  //   wait + overhead + synopsis for the rest. Check the global cap.
  SimConfig cfg = quiet_config(2);
  cfg.us_per_point = 80.0;  // exact 160ms >> deadline
  cfg.deadline_ms = 100.0;
  ClusterSim sim(cfg, flat_profiles(2, 2000, 20));
  common::Rng rng(61);
  const auto arrivals = poisson_arrivals(25.0, 30.0, rng);
  const auto r = sim.run(core::Technique::kAccuracyTrader, arrivals);

  const double syn_ms = 20.0 * 80.0 * cfg.synopsis_point_factor / 1e3;
  const double set_ms = 100.0 * 80.0 / 1e3;  // 100 points per set
  const double service_cap = cfg.deadline_ms + syn_ms + set_ms;
  // Wait itself is bounded: a queued request's predecessors each take at
  // most service_cap... use the recorded wait tracker directly.
  const double wait_cap = r.subop_wait_ms.percentile(100);
  EXPECT_LE(r.subop_latency_ms.percentile(100),
            wait_cap + service_cap + cfg.base_overhead_ms + 1e-6);
  // And the service share alone never exceeds the analytic cap.
  EXPECT_LE(r.subop_latency_ms.percentile(100) - wait_cap,
            service_cap + cfg.base_overhead_ms + 1e-6);
}

TEST(ClusterSim, TechniquesShareIdenticalRandomness) {
  // The same seed must give every technique the same node speeds and
  // interference, so Basic and Partial (identical work model) produce
  // identical sub-op latency distributions.
  SimConfig cfg = quiet_config(3);
  cfg.interference.enabled = true;
  ClusterSim sim(cfg, flat_profiles(3, 800, 8));
  common::Rng rng(62);
  const auto arrivals = poisson_arrivals(8.0, 20.0, rng);
  const auto basic = sim.run(core::Technique::kBasic, arrivals);
  const auto partial = sim.run(core::Technique::kPartialExecution, arrivals);
  EXPECT_DOUBLE_EQ(basic.subop_latency_ms.percentile(50),
                   partial.subop_latency_ms.percentile(50));
  EXPECT_DOUBLE_EQ(basic.subop_latency_ms.percentile(99.9),
                   partial.subop_latency_ms.percentile(99.9));
}

TEST(ClusterSim, ExplicitInterferenceTraceRespected) {
  SimConfig cfg = quiet_config(1);
  cfg.num_nodes = 1;
  cfg.us_per_point = 10.0;  // 10ms service for 1000 points
  cfg.interference_trace.push_back(InterferenceJob{0, 0.0, 1000.0, 3.0});
  ClusterSim sim(cfg, flat_profiles(1, 1000, 10));
  const auto r = sim.run(core::Technique::kBasic, {0.5});
  // Every service runs 3x slower under the trace.
  EXPECT_NEAR(r.subop_latency_ms.percentile(100), 30.0, 1e-9);
}

TEST(ClusterSim, WaitTrackerDecomposesLatency) {
  SimConfig cfg = quiet_config(1);
  cfg.us_per_point = 10.0;  // 10ms deterministic service
  ClusterSim sim(cfg, flat_profiles(1, 1000, 10));
  // Two back-to-back arrivals: second waits exactly one service time.
  const auto r = sim.run(core::Technique::kBasic, {0.0, 0.001});
  EXPECT_NEAR(r.subop_wait_ms.percentile(100), 10.0 - 1.0, 1e-6);
  EXPECT_NEAR(r.subop_wait_ms.percentile(1), 0.0, 1e-9);
}

// Load sweep: AT's p99.9 stays bounded while Basic's explodes — the
// qualitative content of Table 1, asserted as a property.
class LoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweep, AccuracyTraderBoundedBasicNot) {
  const double rate = GetParam();
  SimConfig cfg = quiet_config(4);
  cfg.us_per_point = 100.0;  // exact 150ms -> capacity ~6.7 rps
  cfg.deadline_ms = 100.0;
  ClusterSim sim(cfg, flat_profiles(4, 1500, 15));
  common::Rng rng(static_cast<std::uint64_t>(rate * 100));
  const auto arrivals = poisson_arrivals(rate, 40.0, rng);
  const auto at = sim.run(core::Technique::kAccuracyTrader, arrivals);
  EXPECT_LT(at.p999_component_ms(), 4.0 * cfg.deadline_ms)
      << "rate " << rate;
  if (rate >= 20.0) {
    const auto basic = sim.run(core::Technique::kBasic, arrivals);
    EXPECT_GT(basic.p999_component_ms(), at.p999_component_ms() * 5.0)
        << "rate " << rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, LoadSweep,
                         ::testing::Values(2.0, 20.0, 40.0, 80.0));

}  // namespace
}  // namespace at::sim
