// SIMD dispatch layer tests: tier selection/override plumbing, kernel-level
// bit-parity of every dispatched kernel against the scalar reference, and
// the end-to-end parity matrix the ISSUE requires — tf-idf/BM25 top-k,
// fold-in and deterministic-SVD factors bit-identical across every
// dispatch tier the hardware supports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "linalg/svd.h"
#include "services/search/inverted_index.h"
#include "services/search/postings_codec.h"
#include "synopsis/sparse_rows.h"

namespace at {
namespace {

/// Tiers the running hardware can execute, scalar first.
std::vector<simd::Tier> tiers_under_test() {
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  const simd::Tier max = simd::max_supported_tier();
  if (max >= simd::Tier::kSse42) tiers.push_back(simd::Tier::kSse42);
  if (max >= simd::Tier::kAvx2) tiers.push_back(simd::Tier::kAvx2);
  return tiers;
}

/// Restores the entry tier so test order cannot leak a forced tier.
class TierGuard {
 public:
  TierGuard() : prev_(simd::active_tier()) {}
  ~TierGuard() { simd::set_tier(prev_); }

 private:
  simd::Tier prev_;
};

synopsis::SparseVector random_vector(common::Rng& rng, std::size_t cols,
                                     double fill) {
  synopsis::SparseVector v;
  for (std::size_t c = 0; c < cols; ++c) {
    if (rng.uniform() < fill) {
      v.emplace_back(static_cast<std::uint32_t>(c),
                     1.0 + rng.uniform(0.0, 4.0));
    }
  }
  return v;
}

synopsis::SparseRows random_rows(std::uint64_t seed, std::size_t n,
                                 std::size_t cols, double fill) {
  common::Rng rng(seed);
  synopsis::SparseRows rows(cols);
  for (std::size_t r = 0; r < n; ++r)
    rows.add_row(random_vector(rng, cols, fill));
  return rows;
}

// ---------------------------------------------------------------------------
// Tier plumbing
// ---------------------------------------------------------------------------

TEST(SimdTier, ParseTierSpecs) {
  simd::Tier t;
  EXPECT_TRUE(simd::parse_tier("scalar", &t));
  EXPECT_EQ(t, simd::Tier::kScalar);
  EXPECT_TRUE(simd::parse_tier("SSE4.2", &t));
  EXPECT_EQ(t, simd::Tier::kSse42);
  EXPECT_TRUE(simd::parse_tier("sse42", &t));
  EXPECT_EQ(t, simd::Tier::kSse42);
  EXPECT_TRUE(simd::parse_tier("AVX2", &t));
  EXPECT_EQ(t, simd::Tier::kAvx2);
  EXPECT_TRUE(simd::parse_tier("auto", &t));
  EXPECT_EQ(t, simd::max_supported_tier());
  EXPECT_FALSE(simd::parse_tier("avx512", &t));
  EXPECT_FALSE(simd::parse_tier(nullptr, &t));
}

TEST(SimdTier, SetTierClampsAndReports) {
  TierGuard guard;
  EXPECT_EQ(simd::set_tier(simd::Tier::kScalar), simd::Tier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  // Requests above hardware support clamp down to the supported maximum.
  const simd::Tier applied = simd::set_tier(simd::Tier::kAvx2);
  EXPECT_EQ(applied, std::min(simd::Tier::kAvx2, simd::max_supported_tier()));
  EXPECT_EQ(simd::active_tier(), applied);
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kSse42), "sse42");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx2), "avx2");
}

// ---------------------------------------------------------------------------
// Kernel-level bit parity vs the scalar reference
// ---------------------------------------------------------------------------

TEST(SimdKernels, DotAndDistanceBitIdenticalAcrossTiers) {
  TierGuard guard;
  common::Rng rng(11);
  for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 31u, 64u, 1000u}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.uniform(-3.0, 3.0);
      b[i] = rng.uniform(-3.0, 3.0);
    }
    simd::set_tier(simd::Tier::kScalar);
    const double ref_dot = simd::dot(a.data(), b.data(), n);
    const double ref_dist = simd::distance_sq(a.data(), b.data(), n);
    for (simd::Tier t : tiers_under_test()) {
      simd::set_tier(t);
      EXPECT_EQ(simd::dot(a.data(), b.data(), n), ref_dot)
          << "n=" << n << " tier=" << simd::tier_name(t);
      EXPECT_EQ(simd::distance_sq(a.data(), b.data(), n), ref_dist)
          << "n=" << n << " tier=" << simd::tier_name(t);
    }
  }
}

TEST(SimdKernels, ElementwiseKernelsBitIdenticalAcrossTiers) {
  TierGuard guard;
  common::Rng rng(22);
  const std::size_t n = 257;  // odd length exercises every tail path
  const std::size_t docs_universe = 400;
  std::vector<double> sqrt_tf(n), tf(n), dl(docs_universe),
      len_norm(docs_universe), bm25_norm(docs_universe);
  std::vector<std::uint32_t> docs(n), cols(n);
  std::vector<std::uint8_t> codes(n);
  std::vector<double> lut(256);
  const std::size_t rank = 3;
  std::vector<double> factors(600 * rank);
  std::vector<double> resid0(n);
  for (std::size_t i = 0; i < n; ++i) {
    sqrt_tf[i] = rng.uniform(0.1, 16.0);
    tf[i] = rng.uniform(0.1, 300.0);
    docs[i] = static_cast<std::uint32_t>(rng.uniform_index(docs_universe));
    cols[i] = static_cast<std::uint32_t>(rng.uniform_index(600));
    codes[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
    resid0[i] = rng.uniform(-2.0, 2.0);
  }
  for (std::size_t d = 0; d < docs_universe; ++d) {
    dl[d] = d % 17 == 0 ? 0.0 : rng.uniform(1.0, 900.0);
  }
  for (std::size_t i = 0; i < lut.size(); ++i)
    lut[i] = std::sqrt(static_cast<double>(i));
  for (auto& f : factors) f = rng.uniform(-1.0, 1.0);

  struct Out {
    std::vector<double> len_norm, bm25_norm, tfidf, bm25, lut_out, conv,
        resid, tfidf_codes, bm25_codes;
  };
  auto run = [&](simd::Tier t) {
    simd::set_tier(t);
    Out o;
    o.len_norm.resize(docs_universe);
    o.bm25_norm.resize(docs_universe);
    o.tfidf.resize(n);
    o.bm25.resize(n);
    o.lut_out.resize(n);
    o.conv.resize(n);
    o.resid = resid0;
    simd::inv_sqrt_or_zero(o.len_norm.data(), dl.data(), docs_universe);
    simd::bm25_doc_norms(o.bm25_norm.data(), dl.data(), 1.2, 0.75, 117.3,
                         docs_universe);
    simd::score_tfidf(o.tfidf.data(), sqrt_tf.data(), docs.data(),
                      o.len_norm.data(), 2.7, n);
    simd::score_bm25(o.bm25.data(), tf.data(), docs.data(),
                     o.bm25_norm.data(), 2.7, 2.2, n);
    simd::expand_lut_u8(o.lut_out.data(), codes.data(), lut.data(), n);
    simd::u8_to_f64(o.conv.data(), codes.data(), n);
    simd::retire_axpy(o.resid.data(), cols.data(), n, factors.data(), rank,
                      1, 0.37);
    o.tfidf_codes.resize(n);
    o.bm25_codes.resize(n);
    simd::score_tfidf_codes(o.tfidf_codes.data(), codes.data(), lut.data(),
                            docs.data(), o.len_norm.data(), 2.7, n);
    simd::score_bm25_codes(o.bm25_codes.data(), codes.data(), docs.data(),
                           o.bm25_norm.data(), 2.7, 2.2, n);
    return o;
  };

  const Out ref = run(simd::Tier::kScalar);
  for (simd::Tier t : tiers_under_test()) {
    const Out got = run(t);
    EXPECT_EQ(got.len_norm, ref.len_norm) << simd::tier_name(t);
    EXPECT_EQ(got.bm25_norm, ref.bm25_norm) << simd::tier_name(t);
    EXPECT_EQ(got.tfidf, ref.tfidf) << simd::tier_name(t);
    EXPECT_EQ(got.bm25, ref.bm25) << simd::tier_name(t);
    EXPECT_EQ(got.lut_out, ref.lut_out) << simd::tier_name(t);
    EXPECT_EQ(got.conv, ref.conv) << simd::tier_name(t);
    EXPECT_EQ(got.resid, ref.resid) << simd::tier_name(t);
    EXPECT_EQ(got.tfidf_codes, ref.tfidf_codes) << simd::tier_name(t);
    EXPECT_EQ(got.bm25_codes, ref.bm25_codes) << simd::tier_name(t);
  }

  // The fused code-path kernels must equal their two-step composition
  // bit for bit (that is what lets accumulate() pick either per block).
  simd::set_tier(simd::Tier::kScalar);
  std::vector<double> two_step(n);
  std::vector<double> staged(n);
  simd::expand_lut_u8(staged.data(), codes.data(), lut.data(), n);
  simd::score_tfidf(two_step.data(), staged.data(), docs.data(),
                    ref.len_norm.data(), 2.7, n);
  EXPECT_EQ(two_step, ref.tfidf_codes);
  simd::u8_to_f64(staged.data(), codes.data(), n);
  simd::score_bm25(two_step.data(), staged.data(), docs.data(),
                   ref.bm25_norm.data(), 2.7, 2.2, n);
  EXPECT_EQ(two_step, ref.bm25_codes);
}

TEST(SimdKernels, GroupVarintDecodeMatchesScalarAcrossTiers) {
  TierGuard guard;
  common::Rng rng(33);
  for (int trial = 0; trial < 20; ++trial) {
    // Group counts not divisible by 4 exercise the zero-padded tail quad.
    const std::size_t n = 1 + rng.uniform_index(128);
    std::vector<std::uint32_t> deltas(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.uniform_index(4)) {
        case 0:
          deltas[i] = static_cast<std::uint32_t>(rng.uniform_index(256));
          break;
        case 1:
          deltas[i] = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
          break;
        case 2:
          deltas[i] = static_cast<std::uint32_t>(rng.uniform_index(1u << 24));
          break;
        default:
          deltas[i] = static_cast<std::uint32_t>(
              rng.uniform_index(0xFFFFFFFFu));
      }
    }
    std::vector<std::uint8_t> buf;
    for (std::size_t i = 0; i < n; i += 4) {
      std::uint32_t quad[4] = {0, 0, 0, 0};
      for (std::size_t j = 0; j < 4 && i + j < n; ++j) quad[j] = deltas[i + j];
      search::codec::put_group4(buf, quad);
    }
    const std::size_t payload = buf.size();
    buf.resize(buf.size() + simd::kDecodePadBytes, 0);  // SIMD load slack

    std::vector<std::uint32_t> ref_ids((n + 3) & ~std::size_t{3});
    simd::set_tier(simd::Tier::kScalar);
    std::uint32_t ref_prev = 71;
    const std::uint8_t* ref_end = simd::decode_group_deltas(
        buf.data(), ref_ids.data(), &ref_prev, n);
    EXPECT_EQ(ref_end, buf.data() + payload);

    for (simd::Tier t : tiers_under_test()) {
      simd::set_tier(t);
      std::vector<std::uint32_t> ids((n + 3) & ~std::size_t{3});
      std::uint32_t prev = 71;
      const std::uint8_t* end =
          simd::decode_group_deltas(buf.data(), ids.data(), &prev, n);
      EXPECT_EQ(end, ref_end) << simd::tier_name(t);
      EXPECT_EQ(prev, ref_prev) << simd::tier_name(t);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ids[i], ref_ids[i])
            << "trial " << trial << " i " << i << " " << simd::tier_name(t);
      }
    }
  }
}

TEST(SimdKernels, U8DeltaDecodeMatchesScalarAcrossTiers) {
  TierGuard guard;
  common::Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(128);  // tails included
    std::vector<std::uint8_t> buf(n);
    for (auto& d : buf) d = static_cast<std::uint8_t>(rng.uniform_index(256));
    const std::size_t payload = buf.size();
    buf.resize(buf.size() + simd::kDecodePadBytes, 0xAB);  // poisoned pad

    simd::set_tier(simd::Tier::kScalar);
    std::vector<std::uint32_t> ref_ids((n + 3) & ~std::size_t{3});
    std::uint32_t ref_prev = 19;
    const std::uint8_t* ref_end =
        simd::decode_u8_deltas(buf.data(), ref_ids.data(), &ref_prev, n);
    EXPECT_EQ(ref_end, buf.data() + payload);

    for (simd::Tier t : tiers_under_test()) {
      simd::set_tier(t);
      std::vector<std::uint32_t> ids((n + 3) & ~std::size_t{3});
      std::uint32_t prev = 19;
      const std::uint8_t* end =
          simd::decode_u8_deltas(buf.data(), ids.data(), &prev, n);
      EXPECT_EQ(end, ref_end) << simd::tier_name(t);
      // The poisoned pad proves tail bytes beyond n never leak into the
      // running prev (the SIMD tail quad must mask them out).
      EXPECT_EQ(prev, ref_prev) << simd::tier_name(t);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(ids[i], ref_ids[i])
            << "trial " << trial << " i " << i << " " << simd::tier_name(t);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end parity matrix: top-k, deterministic SVD, fold-in
// ---------------------------------------------------------------------------

TEST(SimdParityMatrix, TopKBitIdenticalInEveryTier) {
  TierGuard guard;
  for (auto scorer : {search::Scorer::kTfIdf, search::Scorer::kBm25}) {
    // Reference pipeline at the scalar tier: build + score.
    simd::set_tier(simd::Tier::kScalar);
    auto docs = random_rows(404, 120, 90, 0.15);
    search::ScorerParams params;
    params.scorer = scorer;
    search::InvertedIndex ref_idx(docs, params);

    common::Rng qrng(5);
    std::vector<std::vector<std::uint32_t>> queries;
    for (int q = 0; q < 30; ++q) {
      std::vector<std::uint32_t> terms;
      const std::size_t len = 1 + qrng.uniform_index(5);
      for (std::size_t t = 0; t < len; ++t) {
        terms.push_back(static_cast<std::uint32_t>(qrng.uniform_index(100)));
      }
      queries.push_back(std::move(terms));
    }
    std::vector<std::vector<search::ScoredDoc>> ref;
    for (const auto& q : queries) ref.push_back(ref_idx.topk(q, 500, 10));

    for (simd::Tier t : tiers_under_test()) {
      simd::set_tier(t);
      // Rebuild under the tier too: index construction (norm passes) must
      // be as bit-stable as the query path.
      search::InvertedIndex idx(docs, params);
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto got = idx.topk(queries[q], 500, 10);
        ASSERT_EQ(got.size(), ref[q].size()) << simd::tier_name(t);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].doc, ref[q][i].doc)
              << "query " << q << " " << simd::tier_name(t);
          EXPECT_EQ(got[i].score, ref[q][i].score)  // bit-exact
              << "query " << q << " " << simd::tier_name(t);
        }
      }
    }
  }
}

void expect_same_model(const linalg::SvdModel& a, const linalg::SvdModel& b,
                       const char* label) {
  ASSERT_EQ(a.row_factors.rows(), b.row_factors.rows()) << label;
  ASSERT_EQ(a.row_factors.cols(), b.row_factors.cols()) << label;
  for (std::size_t r = 0; r < a.row_factors.rows(); ++r)
    for (std::size_t d = 0; d < a.row_factors.cols(); ++d)
      ASSERT_EQ(a.row_factors(r, d), b.row_factors(r, d))
          << label << " row factor (" << r << "," << d << ")";
  for (std::size_t r = 0; r < a.col_factors.rows(); ++r)
    for (std::size_t d = 0; d < a.col_factors.cols(); ++d)
      ASSERT_EQ(a.col_factors(r, d), b.col_factors(r, d))
          << label << " col factor (" << r << "," << d << ")";
  ASSERT_EQ(a.train_rmse, b.train_rmse) << label;
}

TEST(SimdParityMatrix, DeterministicSvdAndFoldInBitIdenticalInEveryTier) {
  TierGuard guard;
  auto rows = random_rows(606, 80, 40, 0.2);
  const auto ds = rows.to_dataset();
  linalg::SvdConfig cfg;
  cfg.rank = 3;
  cfg.epochs_per_dim = 25;
  cfg.deterministic = true;

  // Fold-in input: a dozen appended rows.
  auto grown = rows;
  const auto first_new = static_cast<std::uint32_t>(grown.rows());
  common::Rng rng(99);
  for (int i = 0; i < 12; ++i) grown.add_row(random_vector(rng, 40, 0.3));
  const auto tail = grown.tail_dataset(first_new);

  simd::set_tier(simd::Tier::kScalar);
  const auto ref = linalg::incremental_svd(ds, cfg);
  auto ref_folded = ref;
  linalg::fold_in_rows(ref_folded, tail, cfg);

  for (simd::Tier t : tiers_under_test()) {
    simd::set_tier(t);
    const auto got = linalg::incremental_svd(ds, cfg);
    expect_same_model(got, ref, simd::tier_name(t));
    auto folded = got;
    linalg::fold_in_rows(folded, tail, cfg);
    expect_same_model(folded, ref_folded, simd::tier_name(t));
  }
}

}  // namespace
}  // namespace at
