// R-tree unit and property tests: rectangle algebra, structural invariants
// under inserts/deletes, bulk loading, level enumeration, queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "rtree/rect.h"
#include "rtree/rtree.h"

namespace at::rtree {
namespace {

Rect pt(double x, double y) {
  const double c[2] = {x, y};
  return Rect::point(std::span<const double>(c, 2));
}

TEST(Rect, PointIsDegenerate) {
  const Rect r = pt(1.0, 2.0);
  EXPECT_EQ(r.dims(), 2u);
  EXPECT_DOUBLE_EQ(r.area(), 0.0);
  EXPECT_TRUE(r.contains(r));
}

TEST(Rect, ContainsAndIntersects) {
  const Rect big({0, 0}, {10, 10});
  const Rect inner({2, 2}, {3, 3});
  const Rect overlapping({9, 9}, {12, 12});
  const Rect outside({20, 20}, {21, 21});
  EXPECT_TRUE(big.contains(inner));
  EXPECT_FALSE(inner.contains(big));
  EXPECT_TRUE(big.intersects(overlapping));
  EXPECT_TRUE(overlapping.intersects(big));
  EXPECT_FALSE(big.intersects(outside));
  EXPECT_FALSE(big.contains(overlapping));
}

TEST(Rect, TouchingEdgesIntersect) {
  const Rect a({0, 0}, {1, 1});
  const Rect b({1, 0}, {2, 1});
  EXPECT_TRUE(a.intersects(b));
}

TEST(Rect, AreaMarginEnlargement) {
  const Rect r({0, 0}, {2, 3});
  EXPECT_DOUBLE_EQ(r.area(), 6.0);
  EXPECT_DOUBLE_EQ(r.margin(), 5.0);
  const Rect other({4, 0}, {5, 1});
  EXPECT_DOUBLE_EQ(r.enlargement(other), 5.0 * 3.0 - 6.0);
  EXPECT_DOUBLE_EQ(r.enlargement(Rect({0, 0}, {1, 1})), 0.0);
}

TEST(Rect, JoinCoversBoth) {
  const Rect a({0, 0}, {1, 1});
  const Rect b({5, 5}, {6, 7});
  const Rect j = Rect::join(a, b);
  EXPECT_TRUE(j.contains(a));
  EXPECT_TRUE(j.contains(b));
  EXPECT_DOUBLE_EQ(j.area(), 6.0 * 7.0);
}

TEST(Rect, OverlapArea) {
  const Rect a({0, 0}, {2, 2});
  const Rect b({1, 1}, {3, 3});
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 1.0);
  EXPECT_DOUBLE_EQ(a.overlap_area(Rect({5, 5}, {6, 6})), 0.0);
}

TEST(Rect, ExpandFromEmpty) {
  Rect r;
  r.expand(pt(3, 4));
  EXPECT_EQ(r.dims(), 2u);
  EXPECT_DOUBLE_EQ(r.lo(0), 3.0);
}

TEST(Rect, InvalidConstruction) {
  EXPECT_THROW(Rect({0, 0}, {1}), std::invalid_argument);
  EXPECT_THROW(Rect({2}, {1}), std::invalid_argument);
}

TEST(RTree, EmptyTree) {
  RTree t(2);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);
  EXPECT_TRUE(t.range_query(Rect({-10, -10}, {10, 10})).empty());
  t.check_invariants();
}

TEST(RTree, RejectsBadParams) {
  RTreeParams p;
  p.max_entries = 8;
  p.min_entries = 5;  // > M/2
  EXPECT_THROW(RTree(2, p), std::invalid_argument);
  EXPECT_THROW(RTree(0), std::invalid_argument);
}

TEST(RTree, InsertAndRangeQuery) {
  RTree t(2);
  for (int i = 0; i < 100; ++i) {
    t.insert(i, pt(i % 10, i / 10));
  }
  EXPECT_EQ(t.size(), 100u);
  t.check_invariants();

  const auto hits = t.range_query(Rect({0, 0}, {2, 2}));
  // Points with x in {0,1,2}, y in {0,1,2}: ids i where i%10<=2 && i/10<=2.
  EXPECT_EQ(hits.size(), 9u);
}

TEST(RTree, RangeQueryMatchesBruteForce) {
  common::Rng rng(17);
  RTree t(3);
  std::vector<std::array<double, 3>> pts;
  for (int i = 0; i < 500; ++i) {
    std::array<double, 3> p{rng.uniform(0, 100), rng.uniform(0, 100),
                            rng.uniform(0, 100)};
    pts.push_back(p);
    t.insert(i, Rect::point(std::span<const double>(p.data(), 3)));
  }
  t.check_invariants();
  const Rect q({20, 20, 20}, {60, 55, 70});
  auto hits = t.range_query(q);
  std::sort(hits.begin(), hits.end());
  std::vector<std::uint64_t> expect;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (q.contains(Rect::point(std::span<const double>(pts[i].data(), 3))))
      expect.push_back(i);
  }
  EXPECT_EQ(hits, expect);
}

TEST(RTree, DepthBalancedLeaves) {
  // All data entries must live at level 0 — guaranteed by construction,
  // verified via check_invariants plus node enumeration.
  RTree t(2);
  for (int i = 0; i < 300; ++i) t.insert(i, pt(i * 0.37, i * 0.91));
  t.check_invariants();
  std::size_t members = 0;
  for (const auto& leaf : t.nodes_at_level(0)) members += leaf.subtree_size;
  EXPECT_EQ(members, 300u);
}

TEST(RTree, EraseRemovesExactEntry) {
  RTree t(2);
  for (int i = 0; i < 50; ++i) t.insert(i, pt(i, i));
  EXPECT_TRUE(t.erase(25, pt(25, 25)));
  EXPECT_FALSE(t.erase(25, pt(25, 25)));  // already gone
  EXPECT_FALSE(t.erase(26, pt(0, 0)));    // wrong rect
  EXPECT_EQ(t.size(), 49u);
  t.check_invariants();
}

TEST(RTree, EraseEverythingLeavesEmptyTree) {
  RTree t(2);
  for (int i = 0; i < 120; ++i) t.insert(i, pt(i % 11, i % 7));
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(t.erase(i, pt(i % 11, i % 7))) << i;
    t.check_invariants();
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);
}

TEST(RTree, MixedInsertEraseStress) {
  common::Rng rng(99);
  RTree t(2);
  std::vector<std::pair<std::uint64_t, Rect>> live;
  std::uint64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.uniform() < 0.6) {
      Rect r = pt(rng.uniform(0, 50), rng.uniform(0, 50));
      t.insert(next_id, r);
      live.emplace_back(next_id, r);
      ++next_id;
    } else {
      const std::size_t k = rng.uniform_index(live.size());
      ASSERT_TRUE(t.erase(live[k].first, live[k].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    }
    if (step % 250 == 0) t.check_invariants();
  }
  t.check_invariants();
  EXPECT_EQ(t.size(), live.size());
}

TEST(RTree, BulkLoadBasics) {
  std::vector<std::pair<std::uint64_t, Rect>> items;
  for (int i = 0; i < 1000; ++i) {
    items.emplace_back(i, pt(i % 37, i % 61));
  }
  RTree t = RTree::bulk_load(2, std::move(items));
  EXPECT_EQ(t.size(), 1000u);
  t.check_invariants();
}

TEST(RTree, BulkLoadEmpty) {
  RTree t = RTree::bulk_load(2, {});
  EXPECT_TRUE(t.empty());
  t.check_invariants();
}

TEST(RTree, BulkLoadMatchesQuerySemantics) {
  common::Rng rng(7);
  std::vector<std::pair<std::uint64_t, Rect>> items;
  for (int i = 0; i < 400; ++i) {
    items.emplace_back(i, pt(rng.uniform(0, 10), rng.uniform(0, 10)));
  }
  auto copy = items;
  RTree t = RTree::bulk_load(2, std::move(copy));
  const Rect q({2, 2}, {5, 5});
  auto hits = t.range_query(q);
  std::sort(hits.begin(), hits.end());
  std::vector<std::uint64_t> expect;
  for (const auto& [id, r] : items)
    if (q.intersects(r)) expect.push_back(id);
  EXPECT_EQ(hits, expect);
}

TEST(RTree, BulkLoadThenDynamicOps) {
  std::vector<std::pair<std::uint64_t, Rect>> items;
  for (int i = 0; i < 200; ++i) items.emplace_back(i, pt(i, -i));
  RTree t = RTree::bulk_load(2, std::move(items));
  t.insert(1000, pt(500, 500));
  EXPECT_TRUE(t.erase(17, pt(17, -17)));
  EXPECT_EQ(t.size(), 200u);
  t.check_invariants();
}

TEST(RTree, NodesAtLevelPartitionData) {
  RTree t(2);
  for (int i = 0; i < 600; ++i) t.insert(i, pt(i * 0.13, i * 0.29));
  for (std::size_t level = 0; level < t.height(); ++level) {
    std::set<std::uint64_t> seen;
    for (const auto& node : t.nodes_at_level(level)) {
      for (auto id : t.subtree_data_ids(node.node_id)) {
        EXPECT_TRUE(seen.insert(id).second)
            << "duplicate data id across level-" << level << " nodes";
      }
    }
    EXPECT_EQ(seen.size(), 600u) << "level " << level;
  }
}

TEST(RTree, SelectLevelRespectsBudget) {
  RTree t(2);
  for (int i = 0; i < 500; ++i) t.insert(i, pt(i % 23, i % 19));
  const std::size_t level = t.select_level(10);
  EXPECT_LE(t.node_count_at_level(level), 10u);
  // The next level down (if any) must exceed the budget — maximal
  // resolution within it.
  if (level > 0) {
    EXPECT_GT(t.node_count_at_level(level - 1), 10u);
  }
}

TEST(RTree, SubtreeSizeConsistent) {
  RTree t(2);
  for (int i = 0; i < 250; ++i) t.insert(i, pt(i % 17, i % 13));
  for (const auto& node : t.nodes_at_level(t.height() - 1)) {
    EXPECT_EQ(node.subtree_size, 250u);  // root covers everything
  }
}

TEST(RTree, VersionBumpsOnSubtreeChange) {
  RTree t(2);
  for (int i = 0; i < 200; ++i) t.insert(i, pt(i % 20, i % 15));
  const auto nodes = t.nodes_at_level(1);
  ASSERT_FALSE(nodes.empty());

  // Find the level-1 node that owns data id 0 and remember the versions.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> before;
  for (const auto& n : nodes) before.emplace_back(n.node_id, n.version);

  ASSERT_TRUE(t.erase(0, pt(0, 0)));

  // At least one node's version must have changed (the ancestor), and
  // every changed node must actually contain different data now.
  std::size_t changed = 0;
  for (const auto& [id, ver] : before) {
    try {
      if (t.node_version(id) != ver) ++changed;
    } catch (const std::out_of_range&) {
      ++changed;  // node disappeared entirely — also a change
    }
  }
  EXPECT_GE(changed, 1u);
}

TEST(RTree, VersionStableForUntouchedSubtrees) {
  // Insert two well-separated clusters; touching one must not bump the
  // other's node versions (the synopsis updater depends on this for
  // incremental re-aggregation).
  RTree t(2);
  for (int i = 0; i < 60; ++i) t.insert(i, pt(i % 8, i % 8));
  for (int i = 60; i < 120; ++i) t.insert(i, pt(1000 + i % 8, 1000 + i % 8));
  t.check_invariants();

  const auto nodes = t.nodes_at_level(0);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> far_leaves;
  for (const auto& n : nodes) {
    if (n.mbr.lo(0) >= 900) far_leaves.emplace_back(n.node_id, n.version);
  }
  ASSERT_FALSE(far_leaves.empty());

  t.insert(999, pt(3.5, 3.5));  // lands in the near cluster
  for (const auto& [id, ver] : far_leaves) {
    EXPECT_EQ(t.node_version(id), ver);
  }
}

TEST(RTree, StatsCountNodes) {
  RTree t(2);
  for (int i = 0; i < 100; ++i) t.insert(i, pt(i, i % 9));
  const auto s = t.stats();
  EXPECT_EQ(s.data_entries, 100u);
  EXPECT_GE(s.nodes, 100u / 8 + 1);
  EXPECT_EQ(s.height, t.height());
}

TEST(RTree, DimensionMismatchThrows) {
  RTree t(2);
  const double c[3] = {1, 2, 3};
  EXPECT_THROW(t.insert(0, Rect::point(std::span<const double>(c, 3))),
               std::invalid_argument);
}

TEST(RTree, DuplicatePointsSupported) {
  RTree t(2);
  for (int i = 0; i < 40; ++i) t.insert(i, pt(1, 1));  // all identical
  EXPECT_EQ(t.size(), 40u);
  t.check_invariants();
  EXPECT_EQ(t.range_query(Rect({1, 1}, {1, 1})).size(), 40u);
  EXPECT_TRUE(t.erase(7, pt(1, 1)));
  EXPECT_EQ(t.size(), 39u);
}

TEST(RTree, ExtendedRectangleEntries) {
  // The tree stores boxes, not only points: insert, query, and erase
  // genuine rectangles.
  common::Rng rng(71);
  RTree t(2);
  std::vector<std::pair<std::uint64_t, Rect>> live;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 90), y = rng.uniform(0, 90);
    const Rect r({x, y}, {x + rng.uniform(0.1, 8.0),
                          y + rng.uniform(0.1, 8.0)});
    t.insert(i, r);
    live.emplace_back(i, r);
  }
  t.check_invariants();

  const Rect q({30, 30}, {50, 50});
  auto hits = t.range_query(q);
  std::sort(hits.begin(), hits.end());
  std::vector<std::uint64_t> expect;
  for (const auto& [id, r] : live)
    if (q.intersects(r)) expect.push_back(id);
  EXPECT_EQ(hits, expect);

  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(t.erase(live[i].first, live[i].second)) << i;
  }
  t.check_invariants();
  EXPECT_EQ(t.size(), 150u);
}

TEST(RTree, NearestWithRectEntriesUsesBoxDistance) {
  RTree t(2);
  t.insert(1, Rect({0, 0}, {10, 10}));  // query point inside -> dist 0
  t.insert(2, Rect({20, 20}, {22, 22}));
  const double q[2] = {5.0, 5.0};
  const auto got = t.nearest(std::span<const double>(q, 2), 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].data_id, 1u);
  EXPECT_DOUBLE_EQ(got[0].dist2, 0.0);
  EXPECT_DOUBLE_EQ(got[1].dist2, 15.0 * 15.0 * 2.0);
}

TEST(RTreeNearest, MatchesBruteForce) {
  common::Rng rng(41);
  RTree t(2);
  std::vector<std::array<double, 2>> pts;
  for (int i = 0; i < 300; ++i) {
    std::array<double, 2> p{rng.uniform(0, 100), rng.uniform(0, 100)};
    pts.push_back(p);
    t.insert(i, Rect::point(std::span<const double>(p.data(), 2)));
  }
  const double q[2] = {37.0, 61.0};
  const auto got = t.nearest(std::span<const double>(q, 2), 10);
  ASSERT_EQ(got.size(), 10u);

  std::vector<std::pair<double, std::uint64_t>> brute;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double dx = pts[i][0] - q[0], dy = pts[i][1] - q[1];
    brute.emplace_back(dx * dx + dy * dy, i);
  }
  std::sort(brute.begin(), brute.end());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i].data_id, brute[i].second) << i;
    EXPECT_NEAR(got[i].dist2, brute[i].first, 1e-9);
  }
}

TEST(RTreeNearest, DistancesAreNonDecreasing) {
  RTree t(2);
  for (int i = 0; i < 100; ++i) t.insert(i, pt(i % 13, i % 7));
  const double q[2] = {5.0, 3.0};
  const auto got = t.nearest(std::span<const double>(q, 2), 20);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].dist2, got[i].dist2);
  }
}

TEST(RTreeNearest, KLargerThanSize) {
  RTree t(2);
  t.insert(1, pt(0, 0));
  t.insert(2, pt(5, 5));
  const double q[2] = {1.0, 1.0};
  const auto got = t.nearest(std::span<const double>(q, 2), 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].data_id, 1u);
}

TEST(RTreeNearest, EmptyAndZeroK) {
  RTree t(2);
  const double q[2] = {0.0, 0.0};
  EXPECT_TRUE(t.nearest(std::span<const double>(q, 2), 5).empty());
  t.insert(1, pt(0, 0));
  EXPECT_TRUE(t.nearest(std::span<const double>(q, 2), 0).empty());
}

TEST(RectMinDist, InsideAndOutside) {
  const Rect r({0, 0}, {10, 10});
  const double inside[2] = {5, 5};
  const double beside[2] = {13, 5};
  const double corner[2] = {13, 14};
  EXPECT_DOUBLE_EQ(r.min_dist2(std::span<const double>(inside, 2)), 0.0);
  EXPECT_DOUBLE_EQ(r.min_dist2(std::span<const double>(beside, 2)), 9.0);
  EXPECT_DOUBLE_EQ(r.min_dist2(std::span<const double>(corner, 2)),
                   9.0 + 16.0);
}

TEST(RStarSplit, InvariantsUnderChurn) {
  RTreeParams p;
  p.split = SplitPolicy::kRStar;
  common::Rng rng(51);
  RTree t(2, p);
  std::vector<std::pair<std::uint64_t, Rect>> live;
  for (int i = 0; i < 1500; ++i) {
    Rect r = pt(rng.uniform(0, 40), rng.uniform(0, 40));
    t.insert(i, r);
    live.emplace_back(i, r);
  }
  t.check_invariants();
  for (int i = 0; i < 700; ++i) {
    ASSERT_TRUE(t.erase(live[i].first, live[i].second));
  }
  t.check_invariants();
  EXPECT_EQ(t.size(), 800u);
}

TEST(RStarSplit, QueriesMatchQuadratic) {
  // Both split policies must answer queries identically — only the tree
  // shape differs.
  RTreeParams quad;
  RTreeParams rstar;
  rstar.split = SplitPolicy::kRStar;
  common::Rng rng(53);
  RTree a(2, quad), b(2, rstar);
  for (int i = 0; i < 600; ++i) {
    const Rect r = pt(rng.uniform(0, 30), rng.uniform(0, 30));
    a.insert(i, r);
    b.insert(i, r);
  }
  const Rect q({5, 5}, {18, 14});
  auto ha = a.range_query(q);
  auto hb = b.range_query(q);
  std::sort(ha.begin(), ha.end());
  std::sort(hb.begin(), hb.end());
  EXPECT_EQ(ha, hb);
}

TEST(RStarSplit, LowerOverlapThanQuadratic) {
  // The R* split optimizes overlap directly; on uniform data its leaf
  // MBRs should overlap no more (usually less) than quadratic's.
  auto total_leaf_overlap = [](const RTree& t) {
    const auto leaves = t.nodes_at_level(0);
    double acc = 0.0;
    for (std::size_t i = 0; i < leaves.size(); ++i)
      for (std::size_t j = i + 1; j < leaves.size(); ++j)
        acc += leaves[i].mbr.overlap_area(leaves[j].mbr);
    return acc;
  };
  RTreeParams quad;
  RTreeParams rstar;
  rstar.split = SplitPolicy::kRStar;
  common::Rng rng(57);
  RTree a(2, quad), b(2, rstar);
  for (int i = 0; i < 800; ++i) {
    const Rect r = pt(rng.uniform(0, 100), rng.uniform(0, 100));
    a.insert(i, r);
    b.insert(i, r);
  }
  EXPECT_LE(total_leaf_overlap(b), total_leaf_overlap(a) * 1.10);
}

TEST(RTreeSerialize, RoundTripPreservesEverything) {
  common::Rng rng(61);
  RTree t(3);
  for (int i = 0; i < 400; ++i) {
    const double c[3] = {rng.uniform(0, 10), rng.uniform(0, 10),
                         rng.uniform(0, 10)};
    t.insert(i, Rect::point(std::span<const double>(c, 3)));
  }
  // A couple of deletions so versions are non-trivial.
  const double c0[3] = {0, 0, 0};
  (void)c0;
  std::stringstream buf;
  t.save(buf);
  RTree loaded = RTree::load(buf);
  loaded.check_invariants();
  EXPECT_EQ(loaded.size(), t.size());
  EXPECT_EQ(loaded.height(), t.height());

  // Same node ids, versions, and memberships at every level.
  for (std::size_t level = 0; level < t.height(); ++level) {
    const auto before = t.nodes_at_level(level);
    const auto after = loaded.nodes_at_level(level);
    ASSERT_EQ(before.size(), after.size()) << "level " << level;
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(loaded.node_version(before[i].node_id), before[i].version);
      EXPECT_EQ(loaded.subtree_data_ids(before[i].node_id),
                t.subtree_data_ids(before[i].node_id));
    }
  }

  // Loaded tree stays fully dynamic.
  const double p[3] = {1, 2, 3};
  loaded.insert(9999, Rect::point(std::span<const double>(p, 3)));
  EXPECT_EQ(loaded.size(), t.size() + 1);
  loaded.check_invariants();
}

TEST(RTreeSerialize, RejectsGarbage) {
  std::stringstream buf;
  buf << "not an rtree at all";
  EXPECT_THROW(RTree::load(buf), std::runtime_error);
}

// Parameterized: invariants hold across fan-out configurations and sizes.
class RTreeParamSweep : public ::testing::TestWithParam<
                            std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(RTreeParamSweep, InvariantsUnderChurn) {
  const auto [max_e, min_e, n] = GetParam();
  RTreeParams p;
  p.max_entries = max_e;
  p.min_entries = min_e;
  common::Rng rng(max_e * 1000 + n);
  RTree t(2, p);
  std::vector<std::pair<std::uint64_t, Rect>> live;
  for (int i = 0; i < n; ++i) {
    Rect r = pt(rng.uniform(0, 30), rng.uniform(0, 30));
    t.insert(i, r);
    live.emplace_back(i, r);
  }
  t.check_invariants();
  // Delete half.
  for (int i = 0; i < n / 2; ++i) {
    ASSERT_TRUE(t.erase(live[i].first, live[i].second));
  }
  t.check_invariants();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n - n / 2));
}

INSTANTIATE_TEST_SUITE_P(
    FanOuts, RTreeParamSweep,
    ::testing::Values(std::make_tuple(4, 2, 200), std::make_tuple(8, 3, 500),
                      std::make_tuple(16, 6, 800),
                      std::make_tuple(32, 12, 1000),
                      std::make_tuple(8, 4, 64)));

// Bulk-load packing quality: node count at the leaf level should be close
// to ceil(n / max_entries).
class BulkLoadPacking : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BulkLoadPacking, LeafCountNearOptimal) {
  const std::size_t n = GetParam();
  common::Rng rng(n);
  std::vector<std::pair<std::uint64_t, Rect>> items;
  for (std::size_t i = 0; i < n; ++i)
    items.emplace_back(i, pt(rng.uniform(0, 100), rng.uniform(0, 100)));
  RTreeParams p;  // max 8
  RTree t = RTree::bulk_load(2, std::move(items), p);
  const std::size_t leaves = t.node_count_at_level(0);
  const std::size_t optimal = (n + 7) / 8;
  EXPECT_GE(leaves, optimal);
  EXPECT_LE(leaves, optimal + optimal / 2 + 2);
  t.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadPacking,
                         ::testing::Values(8, 64, 100, 513, 2048));

}  // namespace
}  // namespace at::rtree
