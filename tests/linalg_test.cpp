// Unit tests for the dense matrix helpers and the incremental SVD.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace at::linalg {
namespace {

TEST(Matrix, IndexingRoundTrip) {
  Matrix m(3, 4);
  m(1, 2) = 7.5;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(Matrix, RowPointerIsContiguous) {
  Matrix m(2, 3);
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  m(1, 2) = 3.0;
  const double* r = m.row(1);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 3.0);
}

TEST(Matrix, AppendRowGrowsAndChecksWidth) {
  Matrix m;
  m.append_row({1.0, 2.0});
  m.append_row({3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_THROW(m.append_row({1.0}), std::invalid_argument);
}

TEST(VectorOps, DotNormDistance) {
  const double a[3] = {1.0, 2.0, 2.0};
  const double b[3] = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b, 3), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a, 3), 3.0);
  EXPECT_DOUBLE_EQ(distance(a, a, 3), 0.0);
  EXPECT_NEAR(distance(a, b, 3), std::sqrt(1 + 4 + 1), 1e-12);
}

SparseDataset rank1_dataset(std::size_t rows, std::size_t cols) {
  // value(r, c) = u_r * v_c — exactly rank 1, fully observed.
  SparseDataset ds;
  ds.rows = rows;
  ds.cols = cols;
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const double u = 1.0 + 0.1 * r;
      const double v = 0.5 + 0.2 * c;
      ds.entries.push_back({r, c, u * v});
    }
  }
  return ds;
}

TEST(Svd, RecoversRank1Structure) {
  const auto ds = rank1_dataset(20, 15);
  SvdConfig cfg;
  cfg.rank = 1;
  cfg.epochs_per_dim = 300;
  cfg.learning_rate = 0.02;
  cfg.regularization = 0.0;
  const SvdModel model = incremental_svd(ds, cfg);
  EXPECT_LT(reconstruction_rmse(model, ds), 0.02);
}

TEST(Svd, HigherRankNeverWorse) {
  common::Rng rng(5);
  SparseDataset ds;
  ds.rows = 30;
  ds.cols = 20;
  for (std::uint32_t r = 0; r < ds.rows; ++r)
    for (std::uint32_t c = 0; c < ds.cols; ++c)
      if (rng.bernoulli(0.6))
        ds.entries.push_back({r, c, rng.uniform(1.0, 5.0)});

  SvdConfig cfg;
  cfg.epochs_per_dim = 120;
  cfg.regularization = 0.0;
  cfg.rank = 1;
  const double e1 = incremental_svd(ds, cfg).train_rmse;
  cfg.rank = 4;
  const double e4 = incremental_svd(ds, cfg).train_rmse;
  EXPECT_LE(e4, e1 + 1e-6);
}

TEST(Svd, SimilarRowsGetSimilarFactors) {
  // Two blocks of identical rows: within-block factor distance must be
  // far below between-block distance — the property synopsis grouping
  // relies on.
  SparseDataset ds;
  ds.rows = 20;
  ds.cols = 12;
  for (std::uint32_t r = 0; r < 20; ++r) {
    const bool block_a = r < 10;
    for (std::uint32_t c = 0; c < 12; ++c) {
      const double v = block_a ? (c < 6 ? 5.0 : 1.0) : (c < 6 ? 1.0 : 5.0);
      ds.entries.push_back({r, c, v});
    }
  }
  SvdConfig cfg;
  cfg.rank = 2;
  cfg.epochs_per_dim = 200;
  const SvdModel m = incremental_svd(ds, cfg);
  const double within =
      distance(m.row_factors.row(0), m.row_factors.row(5), 2);
  const double between =
      distance(m.row_factors.row(0), m.row_factors.row(15), 2);
  EXPECT_LT(within * 5.0, between);
}

TEST(Svd, DeterministicForSeed) {
  const auto ds = rank1_dataset(10, 8);
  SvdConfig cfg;
  cfg.rank = 2;
  cfg.epochs_per_dim = 50;
  const SvdModel a = incremental_svd(ds, cfg);
  const SvdModel b = incremental_svd(ds, cfg);
  for (std::size_t r = 0; r < ds.rows; ++r)
    for (std::size_t d = 0; d < cfg.rank; ++d)
      EXPECT_DOUBLE_EQ(a.row_factors(r, d), b.row_factors(r, d));
}

TEST(Svd, RejectsBadConfig) {
  const auto ds = rank1_dataset(4, 4);
  SvdConfig cfg;
  cfg.rank = 0;
  EXPECT_THROW(incremental_svd(ds, cfg), std::invalid_argument);
}

TEST(Svd, RejectsEntryOutOfBounds) {
  SparseDataset ds;
  ds.rows = 2;
  ds.cols = 2;
  ds.entries.push_back({5, 0, 1.0});
  EXPECT_THROW(incremental_svd(ds, SvdConfig{}), std::out_of_range);
}

TEST(Svd, EmptyEntriesYieldInitializedModel) {
  SparseDataset ds;
  ds.rows = 3;
  ds.cols = 3;
  SvdConfig cfg;
  cfg.rank = 2;
  const SvdModel m = incremental_svd(ds, cfg);
  EXPECT_EQ(m.row_factors.rows(), 3u);
  EXPECT_DOUBLE_EQ(m.train_rmse, 0.0);
}

TEST(Svd, EarlyStoppingReducesWork) {
  const auto ds = rank1_dataset(15, 10);
  SvdConfig cfg;
  cfg.rank = 1;
  cfg.epochs_per_dim = 5000;
  cfg.min_improvement = 1e-7;
  const SvdModel m = incremental_svd(ds, cfg);  // must terminate quickly
  EXPECT_LT(reconstruction_rmse(m, ds), 0.1);
}

TEST(Svd, FoldInNewRowsKeepsOldCoordinates) {
  const auto ds = rank1_dataset(12, 10);
  SvdConfig cfg;
  cfg.rank = 2;
  cfg.epochs_per_dim = 150;
  SvdModel model = incremental_svd(ds, cfg);
  const double before = model.row_factors(3, 0);

  SparseDataset extra;
  extra.rows = 2;
  extra.cols = 10;
  for (std::uint32_t c = 0; c < 10; ++c) {
    extra.entries.push_back({0, c, (1.0 + 0.1 * 12) * (0.5 + 0.2 * c)});
    extra.entries.push_back({1, c, (1.0 + 0.1 * 13) * (0.5 + 0.2 * c)});
  }
  fold_in_rows(model, extra, cfg);
  EXPECT_EQ(model.row_factors.rows(), 14u);
  EXPECT_DOUBLE_EQ(model.row_factors(3, 0), before);  // frozen

  // Folded rows should reconstruct their entries reasonably well.
  double err = 0.0;
  for (const auto& e : extra.entries) {
    const double p = model.predict(12 + e.row, e.col);
    err += (p - e.value) * (p - e.value);
  }
  err = std::sqrt(err / static_cast<double>(extra.entries.size()));
  EXPECT_LT(err, 0.6);
}

TEST(Svd, FoldInRejectsColumnMismatch) {
  const auto ds = rank1_dataset(6, 5);
  SvdConfig cfg;
  cfg.rank = 1;
  cfg.epochs_per_dim = 30;
  SvdModel model = incremental_svd(ds, cfg);
  SparseDataset extra;
  extra.rows = 1;
  extra.cols = 99;
  EXPECT_THROW(fold_in_rows(model, extra, cfg), std::invalid_argument);
}

TEST(SvdBiases, AbsorbSystematicOffsets) {
  // Data = strong row/col offsets + weak rank-1 interaction: the biased
  // model should reconstruct far better at equal rank.
  common::Rng rng(71);
  SparseDataset ds;
  ds.rows = 40;
  ds.cols = 30;
  std::vector<double> row_off(ds.rows), col_off(ds.cols);
  for (auto& v : row_off) v = rng.normal(0.0, 1.5);
  for (auto& v : col_off) v = rng.normal(0.0, 1.5);
  for (std::uint32_t r = 0; r < ds.rows; ++r) {
    for (std::uint32_t c = 0; c < ds.cols; ++c) {
      if (!rng.bernoulli(0.7)) continue;
      const double interaction = 0.3 * (1.0 + 0.02 * r) * (1.0 + 0.03 * c);
      ds.entries.push_back(
          {r, c, 3.0 + row_off[r] + col_off[c] + interaction});
    }
  }
  SvdConfig cfg;
  cfg.rank = 1;
  cfg.epochs_per_dim = 150;
  const double plain = incremental_svd(ds, cfg).train_rmse;
  cfg.use_biases = true;
  const double biased = incremental_svd(ds, cfg).train_rmse;
  EXPECT_LT(biased, plain * 0.6);
}

TEST(SvdBiases, PredictIncludesBiasTerms) {
  SparseDataset ds;
  ds.rows = 4;
  ds.cols = 4;
  for (std::uint32_t r = 0; r < 4; ++r)
    for (std::uint32_t c = 0; c < 4; ++c)
      ds.entries.push_back({r, c, 2.0 + 0.5 * r - 0.25 * c});
  SvdConfig cfg;
  cfg.rank = 1;
  cfg.epochs_per_dim = 300;
  cfg.use_biases = true;
  const SvdModel m = incremental_svd(ds, cfg);
  EXPECT_TRUE(m.has_biases());
  EXPECT_NEAR(m.predict(3, 0), 3.5, 0.25);
  EXPECT_NEAR(m.predict(0, 3), 1.25, 0.25);
}

TEST(SvdBiases, FoldInTrainsNewRowBias) {
  SparseDataset ds;
  ds.rows = 10;
  ds.cols = 6;
  for (std::uint32_t r = 0; r < 10; ++r)
    for (std::uint32_t c = 0; c < 6; ++c)
      ds.entries.push_back({r, c, 3.0 + 0.1 * c});
  SvdConfig cfg;
  cfg.rank = 1;
  cfg.epochs_per_dim = 150;
  cfg.use_biases = true;
  SvdModel model = incremental_svd(ds, cfg);

  // New row systematically 2 higher: its bias must pick that up.
  SparseDataset extra;
  extra.rows = 1;
  extra.cols = 6;
  for (std::uint32_t c = 0; c < 6; ++c)
    extra.entries.push_back({0, c, 5.0 + 0.1 * c});
  fold_in_rows(model, extra, cfg);
  ASSERT_EQ(model.row_bias.size(), 11u);
  double err = 0.0;
  for (const auto& e : extra.entries) {
    const double p = model.predict(10, e.col);
    err += std::abs(p - e.value);
  }
  EXPECT_LT(err / 6.0, 0.7);
}

// Parameterized sweep: reconstruction error stays sane across shapes.
class SvdShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SvdShapes, ReconstructionErrorBounded) {
  const auto [rows, cols] = GetParam();
  common::Rng rng(rows * 31 + cols);
  SparseDataset ds;
  ds.rows = rows;
  ds.cols = cols;
  // Low-rank plus noise.
  for (std::uint32_t r = 0; r < rows; ++r)
    for (std::uint32_t c = 0; c < cols; ++c)
      ds.entries.push_back(
          {r, c,
           (1.0 + 0.05 * r) * (1.0 + 0.07 * c) + rng.normal(0.0, 0.05)});
  SvdConfig cfg;
  cfg.rank = 3;
  cfg.epochs_per_dim = 80;
  const SvdModel m = incremental_svd(ds, cfg);
  EXPECT_LT(m.train_rmse, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::make_tuple(5, 40),
                                           std::make_tuple(40, 5),
                                           std::make_tuple(16, 16),
                                           std::make_tuple(64, 8),
                                           std::make_tuple(8, 64)));

}  // namespace
}  // namespace at::linalg
