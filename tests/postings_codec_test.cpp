// Postings codec tests: varint/group-varint primitives, tf quantization
// with the exception side-table, block boundaries, cursor iteration, and
// the compressed-vs-raw equivalence + footprint of CompressedPostings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "services/search/postings_codec.h"

namespace at::search {
namespace {

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t values[] = {0,       1,          127,        128,
                                  16383,   16384,      2097151,    2097152,
                                  1u << 31, 0xFFFFFFFFu, 0xFFFFFFFFFFFFull};
  std::vector<std::uint8_t> buf;
  for (auto v : values) codec::put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  for (auto v : values) {
    std::uint64_t got;
    p = codec::get_varint(p, &got);
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buf;
  codec::put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  codec::put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // 127 (1B) + 128 (2B)
}

TEST(GroupVarint, RoundTripMixedWidths) {
  const std::uint32_t quads[][4] = {
      {0, 1, 2, 3},
      {255, 256, 65535, 65536},
      {16777215, 16777216, 0xFFFFFFFFu, 0},
      {1, 300, 70000, 20000000},
  };
  std::vector<std::uint8_t> buf;
  for (const auto& q : quads) codec::put_group4(buf, q);
  const std::uint8_t* p = buf.data();
  for (const auto& q : quads) {
    std::uint32_t got[4];
    p = codec::get_group4(p, got);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], q[i]);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

TEST(QuantizeTf, IntegralSmallValuesGetCodes) {
  EXPECT_EQ(codec::quantize_tf(1.0), 1);
  EXPECT_EQ(codec::quantize_tf(42.0), 42);
  EXPECT_EQ(codec::quantize_tf(255.0), 255);
}

TEST(QuantizeTf, ExceptionsForEverythingElse) {
  EXPECT_EQ(codec::quantize_tf(0.0), 0);
  EXPECT_EQ(codec::quantize_tf(0.5), 0);
  EXPECT_EQ(codec::quantize_tf(2.5), 0);
  EXPECT_EQ(codec::quantize_tf(256.0), 0);
  EXPECT_EQ(codec::quantize_tf(1e9), 0);
  EXPECT_EQ(codec::quantize_tf(-3.0), 0);
}

TEST(SqrtLut, MatchesStdSqrtBitwise) {
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(codec::kSqrtLut[i], std::sqrt(static_cast<double>(i))) << i;
  }
}

void expect_round_trip(const std::vector<std::uint32_t>& ids,
                       const std::vector<double>& vals) {
  std::vector<std::uint8_t> buf;
  codec::encode_list(buf, ids.data(), vals.data(), ids.size());
  std::vector<std::uint32_t> got_ids;
  std::vector<double> got_vals;
  codec::decode_list(buf.data(), buf.size(), ids.size(), got_ids, got_vals);
  ASSERT_EQ(got_ids, ids);
  ASSERT_EQ(got_vals.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    // Bit-exact, including exceptions.
    EXPECT_EQ(got_vals[i], vals[i]) << "entry " << i;
  }
}

TEST(ListCodec, EmptyList) {
  std::vector<std::uint8_t> buf;
  codec::encode_list(buf, nullptr, nullptr, 0);
  EXPECT_TRUE(buf.empty());
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  codec::decode_list(buf.data(), buf.size(), 0, ids, vals);
  EXPECT_TRUE(ids.empty());
}

TEST(ListCodec, TruncatedOrCorruptInputThrows) {
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  for (std::uint32_t i = 0; i < 300; ++i) {
    ids.push_back(i * 7);
    vals.push_back(i % 5 == 0 ? 0.5 : 2.0);  // some exceptions
  }
  std::vector<std::uint8_t> buf;
  codec::encode_list(buf, ids.data(), vals.data(), ids.size());

  std::vector<std::uint32_t> got_ids;
  std::vector<double> got_vals;
  // Every possible truncation point must throw, never read past the end.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, buf.size() / 4,
                          buf.size() / 2, buf.size() - 1}) {
    got_ids.clear();
    got_vals.clear();
    EXPECT_THROW(
        codec::decode_list(buf.data(), cut, ids.size(), got_ids, got_vals),
        std::runtime_error)
        << "cut " << cut;
  }
  // A count far larger than the payload encodes must also fail loudly.
  got_ids.clear();
  got_vals.clear();
  EXPECT_THROW(codec::decode_list(buf.data(), buf.size(), ids.size() * 50,
                                  got_ids, got_vals),
               std::runtime_error);
  // Bad block tag.
  auto bad = buf;
  bad[0] = 0x7F;
  got_ids.clear();
  got_vals.clear();
  EXPECT_THROW(codec::decode_list(bad.data(), bad.size(), ids.size(), got_ids,
                                  got_vals),
               std::runtime_error);

  // An exception count smaller than the number of zero tf-codes must fail
  // loudly too, not silently patch those tfs to 0.0.
  const std::uint32_t one_id = 5;
  const double one_val = 0.5;  // exception
  std::vector<std::uint8_t> one;
  codec::encode_list(one, &one_id, &one_val, 1);
  ASSERT_EQ(one.size(), 12u);  // tag, code, exc count, f64, delta
  ASSERT_EQ(one[2], 1u);
  one[2] = 0;
  got_ids.clear();
  got_vals.clear();
  EXPECT_THROW(codec::decode_list(one.data(), one.size(), 1, got_ids,
                                  got_vals),
               std::runtime_error);
}

TEST(QuantizeTf, NanAndInfAreExceptions) {
  EXPECT_EQ(codec::quantize_tf(std::nan("")), 0);
  EXPECT_EQ(codec::quantize_tf(std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(codec::quantize_tf(-std::numeric_limits<double>::infinity()), 0);
}

TEST(ListCodec, SingleEntryAndIdZero) {
  expect_round_trip({0}, {3.0});
  expect_round_trip({4096}, {0.25});
}

TEST(ListCodec, ExactBlockBoundaries) {
  for (std::size_t n :
       {codec::kBlockSize - 1, codec::kBlockSize, codec::kBlockSize + 1,
        3 * codec::kBlockSize, 3 * codec::kBlockSize + 7}) {
    std::vector<std::uint32_t> ids(n);
    std::vector<double> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<std::uint32_t>(3 * i + 1);
      vals[i] = static_cast<double>(i % 300);  // codes and exceptions mixed
    }
    expect_round_trip(ids, vals);
  }
}

TEST(ListCodec, RandomListsRoundTrip) {
  common::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint32_t> ids;
    std::vector<double> vals;
    std::uint32_t id = 0;
    const std::size_t n = rng.uniform_index(500);
    for (std::size_t i = 0; i < n; ++i) {
      id += 1 + static_cast<std::uint32_t>(rng.uniform_index(1u << 14));
      ids.push_back(id);
      switch (rng.uniform_index(4)) {
        case 0:
          vals.push_back(1.0 + static_cast<double>(rng.uniform_index(255)));
          break;
        case 1:
          vals.push_back(rng.uniform(0.0, 1.0));  // fractional -> exception
          break;
        case 2:
          vals.push_back(1000.0 + rng.uniform());  // large -> exception
          break;
        default:
          vals.push_back(static_cast<double>(rng.uniform_index(3)));  // 0/1/2
      }
    }
    expect_round_trip(ids, vals);
  }
}

TEST(ListCodec, EncoderPicksCheapestDeltaLayoutPerBlock) {
  // Three regimes, one per layout:
  //  * byte-size gaps (<= 255) take the raw u8 layout: 1 byte per delta,
  //    never worse than varint and SIMD prefix-sum decodable;
  //  * two-byte gaps in [2^14, 2^16) take group varint: 2 data bytes +
  //    1/4 control beats the 3-byte varint;
  //  * mixed gaps where group padding would overshoot keep plain varint.
  std::vector<std::uint32_t> u8_ids, group_ids, varint_ids;
  std::vector<double> vals;
  std::uint32_t a = 0, b = 0, c = 0;
  for (std::size_t i = 0; i < codec::kBlockSize; ++i) {
    a += 200;       // <= 255 -> u8
    b += 20000;     // [2^14, 2^16) -> group
    c += (i % 4 == 0) ? 1 : 300;  // mixed 1/2-byte varints, group pads lose
    u8_ids.push_back(a);
    group_ids.push_back(b);
    varint_ids.push_back(c);
    vals.push_back(1.0);
  }
  std::vector<std::uint8_t> u8_buf, group_buf, varint_buf;
  codec::encode_list(u8_buf, u8_ids.data(), vals.data(), u8_ids.size());
  codec::encode_list(group_buf, group_ids.data(), vals.data(),
                     group_ids.size());
  codec::encode_list(varint_buf, varint_ids.data(), vals.data(),
                     varint_ids.size());
  const std::size_t overhead = 1 + codec::kBlockSize + 1;  // tag + tfs + exc
  EXPECT_EQ(u8_buf[0], codec::kTagU8Delta);
  EXPECT_EQ(u8_buf.size(), overhead + codec::kBlockSize);
  EXPECT_EQ(group_buf[0], codec::kTagGroupVarint);
  EXPECT_EQ(group_buf.size(), overhead + 32 + 2 * codec::kBlockSize);
  EXPECT_EQ(varint_buf[0], codec::kTagVarint);
  // 32 one-byte + 96 two-byte varints.
  EXPECT_EQ(varint_buf.size(), overhead + 32 + 2 * 96);
  expect_round_trip(u8_ids, vals);
  expect_round_trip(group_ids, vals);
  expect_round_trip(varint_ids, vals);
}

CompressedPostings three_term_postings() {
  // term 0: 3 postings, term 1: none, term 2: 2 postings.
  const std::vector<std::size_t> ptr{0, 3, 3, 5};
  const std::vector<std::uint32_t> docs{1, 5, 9, 0, 200};
  const std::vector<double> tfs{1.0, 2.5, 300.0, 7.0, 1.0};
  return CompressedPostings(ptr, docs, tfs);
}

TEST(CompressedPostingsTest, DecodeTermMatchesInput) {
  const auto p = three_term_postings();
  EXPECT_EQ(p.num_terms(), 3u);
  EXPECT_EQ(p.count(0), 3u);
  EXPECT_EQ(p.count(1), 0u);
  EXPECT_EQ(p.count(2), 2u);
  EXPECT_EQ(p.count(9), 0u);
  EXPECT_EQ(p.total_postings(), 5u);

  std::vector<std::uint32_t> docs;
  std::vector<double> tfs;
  p.decode_term(0, docs, tfs);
  EXPECT_EQ(docs, (std::vector<std::uint32_t>{1, 5, 9}));
  EXPECT_EQ(tfs, (std::vector<double>{1.0, 2.5, 300.0}));
  p.decode_term(1, docs, tfs);
  EXPECT_TRUE(docs.empty());
  p.decode_term(2, docs, tfs);
  EXPECT_EQ(docs, (std::vector<std::uint32_t>{0, 200}));
  p.decode_term(7, docs, tfs);  // out of range is safe
  EXPECT_TRUE(docs.empty());
}

TEST(ScanTest, WalksBlocksWithExactValues) {
  // One long term spanning several blocks, docs strided so deltas vary.
  // The sqrt reconstruction (LUT for codes, std::sqrt for exceptions) is
  // exactly what the tf-idf scoring loop does, asserted bit-exact here.
  const std::size_t n = 5 * codec::kBlockSize + 13;
  std::vector<std::size_t> ptr{0, n};
  std::vector<std::uint32_t> docs(n);
  std::vector<double> tfs(n);
  for (std::size_t i = 0; i < n; ++i) {
    docs[i] = static_cast<std::uint32_t>(i * i / 8 + i);  // growing gaps
    tfs[i] = (i % 7 == 0) ? 0.125 * static_cast<double>(i)
                          : static_cast<double>(i % 250 + 1);
  }
  const CompressedPostings p(ptr, docs, tfs);

  std::size_t seen = 0;
  p.scan(0, [&](std::uint32_t doc, std::uint8_t code, double exc) {
    ASSERT_LT(seen, n);
    ASSERT_EQ(doc, docs[seen]);
    const double tf = code != 0 ? static_cast<double>(code) : exc;
    ASSERT_EQ(tf, tfs[seen]);
    const double sqrt_tf =
        code != 0 ? codec::kSqrtLut[code] : std::sqrt(exc);
    ASSERT_EQ(sqrt_tf, std::sqrt(tfs[seen]));  // bit-exact
    ++seen;
  });
  EXPECT_EQ(seen, n);
}

TEST(ScanTest, WideDeltasDecodeThroughEveryVarintWidth) {
  // Gaps spanning 1..5 varint bytes, including the u32 extremes, exercise
  // the fast-path tiers of get_varint32.
  const std::vector<std::uint32_t> ids{0,        1,        127,       128,
                                       16384,    2097152,  268435456,
                                       0x7FFFFFFFu, 0xFFFFFFFEu};
  const std::vector<double> vals(ids.size(), 3.0);
  std::vector<std::size_t> ptr{0, ids.size()};
  const CompressedPostings p(ptr, ids, vals);
  std::size_t seen = 0;
  p.scan(0, [&](std::uint32_t doc, std::uint8_t code, double) {
    ASSERT_EQ(doc, ids[seen]);
    EXPECT_EQ(code, 3);
    ++seen;
  });
  EXPECT_EQ(seen, ids.size());
}

TEST(ScanTest, EmptyAndOutOfRangeTermsVisitNothing) {
  const auto p = three_term_postings();
  std::size_t calls = 0;
  const auto count = [&](std::uint32_t, std::uint8_t, double) { ++calls; };
  p.scan(1, count);
  p.scan(42, count);
  EXPECT_EQ(calls, 0u);
}

// ---------------------------------------------------------------------------
// Malformed-varint regression (the shift-overflow UB fix)
// ---------------------------------------------------------------------------

TEST(VarintCorruptInput, UnterminatedRunsStopAtMaxEncodedWidth) {
  // A run of continuation bytes with the terminator missing used to walk
  // the shift count past the operand width (UB: shift >= 64 / >= 32) and
  // the cursor arbitrarily far. The exact-sized heap buffers make any
  // over-read an ASan failure and the capped shifts keep UBSan quiet; the
  // decoded value is unspecified garbage, only the consumption contract
  // (10 bytes for u64, 5 for u32) is pinned.
  {
    std::vector<std::uint8_t> buf(10, 0xFF);  // exactly the max u64 width
    std::uint64_t v;
    const std::uint8_t* end = codec::get_varint(buf.data(), &v);
    EXPECT_EQ(end, buf.data() + buf.size());
  }
  {
    std::vector<std::uint8_t> buf(5, 0xFF);  // exactly the max u32 width
    std::uint32_t v;
    const std::uint8_t* end = codec::get_varint32(buf.data(), &v);
    EXPECT_EQ(end, buf.data() + buf.size());
  }
}

TEST(VarintCorruptInput, WellFormedMaxWidthValuesStillDecode) {
  // The caps must not clip legitimate maximum-width encodings.
  std::vector<std::uint8_t> buf;
  codec::put_varint(buf, 0xFFFFFFFFFFFFFFFFull);
  ASSERT_EQ(buf.size(), 10u);
  std::uint64_t v64;
  EXPECT_EQ(codec::get_varint(buf.data(), &v64), buf.data() + buf.size());
  EXPECT_EQ(v64, 0xFFFFFFFFFFFFFFFFull);

  buf.clear();
  codec::put_varint(buf, 0xFFFFFFFFull);
  ASSERT_EQ(buf.size(), 5u);
  std::uint32_t v32;
  EXPECT_EQ(codec::get_varint32(buf.data(), &v32), buf.data() + buf.size());
  EXPECT_EQ(v32, 0xFFFFFFFFu);
}

TEST(VarintCorruptInput, CheckedDecodeThrowsOnOverLongVarints) {
  // Build one valid single-posting list whose delta takes the varint
  // layout (> 255, so the u8 layout is ineligible), then corrupt the
  // delta section into an over-long varint (six continuation bytes for a
  // u32). The checked decoder must reject it rather than silently wrap.
  const std::uint32_t id = 300;
  const double val = 2.0;  // integral -> no exception table
  std::vector<std::uint8_t> buf;
  codec::encode_list(buf, &id, &val, 1);
  ASSERT_EQ(buf[0], codec::kTagVarint);
  // Layout: tag, 1 tf code, exc count (0), two-byte delta varint.
  ASSERT_EQ(buf.size(), 5u);
  std::vector<std::uint8_t> bad(buf.begin(), buf.end() - 2);
  bad.insert(bad.end(), {0x83, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01});
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  EXPECT_THROW(codec::decode_list(bad.data(), bad.size(), 1, ids, vals),
               std::runtime_error);

  // An over-long exception *count* varint (shift past 63) must throw too.
  std::vector<std::uint8_t> bad_count{buf[0], buf[1]};
  bad_count.insert(bad_count.end(), 11, 0x80);  // 11 continuation bytes
  bad_count.push_back(0x01);
  ids.clear();
  vals.clear();
  EXPECT_THROW(
      codec::decode_list(bad_count.data(), bad_count.size(), 1, ids, vals),
      std::runtime_error);
}

TEST(VarintCorruptInput, FuzzedCorruptionsThrowOrDecodeNeverCrash) {
  // Fuzz-style regression: random byte flips/truncations over a real
  // encoded list must either decode (possibly to different values) or
  // throw — never read out of bounds or trip UBSan. Run under the ASan and
  // UBSan CI jobs.
  common::Rng rng(2024);
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  std::uint32_t id = 0;
  for (int i = 0; i < 300; ++i) {
    id += 1 + static_cast<std::uint32_t>(rng.uniform_index(1000));
    ids.push_back(id);
    vals.push_back(i % 9 == 0 ? 0.75 : static_cast<double>(1 + i % 200));
  }
  std::vector<std::uint8_t> clean;
  codec::encode_list(clean, ids.data(), vals.data(), ids.size());

  for (int trial = 0; trial < 500; ++trial) {
    // Exact-sized copy so any out-of-bounds read is a heap overflow ASan
    // can see, with a random truncation half the time.
    std::vector<std::uint8_t> fuzzed = clean;
    if (trial % 2 == 0) {
      fuzzed.resize(1 + rng.uniform_index(clean.size()));
    }
    const int flips = 1 + static_cast<int>(rng.uniform_index(8));
    for (int f = 0; f < flips; ++f) {
      fuzzed[rng.uniform_index(fuzzed.size())] =
          static_cast<std::uint8_t>(rng.uniform_index(256));
    }
    std::vector<std::uint32_t> got_ids;
    std::vector<double> got_vals;
    try {
      codec::decode_list(fuzzed.data(), fuzzed.size(), ids.size(), got_ids,
                         got_vals);
    } catch (const std::runtime_error&) {
      // Expected for most corruptions.
    }
  }
}

TEST(CompressedPostingsTest, CompressesTypicalPostingsWell) {
  // Realistic shape: integral small tfs, clustered doc gaps.
  common::Rng rng(123);
  std::vector<std::size_t> ptr{0};
  std::vector<std::uint32_t> docs;
  std::vector<double> tfs;
  for (int t = 0; t < 200; ++t) {
    std::uint32_t d = 0;
    const std::size_t df = 20 + rng.uniform_index(400);
    for (std::size_t i = 0; i < df; ++i) {
      d += 1 + static_cast<std::uint32_t>(rng.uniform_index(50));
      docs.push_back(d);
      tfs.push_back(1.0 + static_cast<double>(rng.uniform_index(8)));
    }
    ptr.push_back(docs.size());
  }
  const CompressedPostings p(ptr, docs, tfs);
  const std::size_t raw =
      docs.size() * (sizeof(std::uint32_t) + 2 * sizeof(double)) +
      ptr.size() * sizeof(std::size_t);
  EXPECT_LT(static_cast<double>(p.compressed_bytes()),
            0.35 * static_cast<double>(raw));
}

}  // namespace
}  // namespace at::search
