// Postings codec tests: varint/group-varint primitives, tf quantization
// with the exception side-table, block boundaries, cursor iteration, and
// the compressed-vs-raw equivalence + footprint of CompressedPostings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "services/search/postings_codec.h"

namespace at::search {
namespace {

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t values[] = {0,       1,          127,        128,
                                  16383,   16384,      2097151,    2097152,
                                  1u << 31, 0xFFFFFFFFu, 0xFFFFFFFFFFFFull};
  std::vector<std::uint8_t> buf;
  for (auto v : values) codec::put_varint(buf, v);
  const std::uint8_t* p = buf.data();
  for (auto v : values) {
    std::uint64_t got;
    p = codec::get_varint(p, &got);
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> buf;
  codec::put_varint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  codec::put_varint(buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // 127 (1B) + 128 (2B)
}

TEST(GroupVarint, RoundTripMixedWidths) {
  const std::uint32_t quads[][4] = {
      {0, 1, 2, 3},
      {255, 256, 65535, 65536},
      {16777215, 16777216, 0xFFFFFFFFu, 0},
      {1, 300, 70000, 20000000},
  };
  std::vector<std::uint8_t> buf;
  for (const auto& q : quads) codec::put_group4(buf, q);
  const std::uint8_t* p = buf.data();
  for (const auto& q : quads) {
    std::uint32_t got[4];
    p = codec::get_group4(p, got);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], q[i]);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

TEST(QuantizeTf, IntegralSmallValuesGetCodes) {
  EXPECT_EQ(codec::quantize_tf(1.0), 1);
  EXPECT_EQ(codec::quantize_tf(42.0), 42);
  EXPECT_EQ(codec::quantize_tf(255.0), 255);
}

TEST(QuantizeTf, ExceptionsForEverythingElse) {
  EXPECT_EQ(codec::quantize_tf(0.0), 0);
  EXPECT_EQ(codec::quantize_tf(0.5), 0);
  EXPECT_EQ(codec::quantize_tf(2.5), 0);
  EXPECT_EQ(codec::quantize_tf(256.0), 0);
  EXPECT_EQ(codec::quantize_tf(1e9), 0);
  EXPECT_EQ(codec::quantize_tf(-3.0), 0);
}

TEST(SqrtLut, MatchesStdSqrtBitwise) {
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(codec::kSqrtLut[i], std::sqrt(static_cast<double>(i))) << i;
  }
}

void expect_round_trip(const std::vector<std::uint32_t>& ids,
                       const std::vector<double>& vals) {
  std::vector<std::uint8_t> buf;
  codec::encode_list(buf, ids.data(), vals.data(), ids.size());
  std::vector<std::uint32_t> got_ids;
  std::vector<double> got_vals;
  codec::decode_list(buf.data(), buf.size(), ids.size(), got_ids, got_vals);
  ASSERT_EQ(got_ids, ids);
  ASSERT_EQ(got_vals.size(), vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    // Bit-exact, including exceptions.
    EXPECT_EQ(got_vals[i], vals[i]) << "entry " << i;
  }
}

TEST(ListCodec, EmptyList) {
  std::vector<std::uint8_t> buf;
  codec::encode_list(buf, nullptr, nullptr, 0);
  EXPECT_TRUE(buf.empty());
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  codec::decode_list(buf.data(), buf.size(), 0, ids, vals);
  EXPECT_TRUE(ids.empty());
}

TEST(ListCodec, TruncatedOrCorruptInputThrows) {
  std::vector<std::uint32_t> ids;
  std::vector<double> vals;
  for (std::uint32_t i = 0; i < 300; ++i) {
    ids.push_back(i * 7);
    vals.push_back(i % 5 == 0 ? 0.5 : 2.0);  // some exceptions
  }
  std::vector<std::uint8_t> buf;
  codec::encode_list(buf, ids.data(), vals.data(), ids.size());

  std::vector<std::uint32_t> got_ids;
  std::vector<double> got_vals;
  // Every possible truncation point must throw, never read past the end.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, buf.size() / 4,
                          buf.size() / 2, buf.size() - 1}) {
    got_ids.clear();
    got_vals.clear();
    EXPECT_THROW(
        codec::decode_list(buf.data(), cut, ids.size(), got_ids, got_vals),
        std::runtime_error)
        << "cut " << cut;
  }
  // A count far larger than the payload encodes must also fail loudly.
  got_ids.clear();
  got_vals.clear();
  EXPECT_THROW(codec::decode_list(buf.data(), buf.size(), ids.size() * 50,
                                  got_ids, got_vals),
               std::runtime_error);
  // Bad block tag.
  auto bad = buf;
  bad[0] = 0x7F;
  got_ids.clear();
  got_vals.clear();
  EXPECT_THROW(codec::decode_list(bad.data(), bad.size(), ids.size(), got_ids,
                                  got_vals),
               std::runtime_error);

  // An exception count smaller than the number of zero tf-codes must fail
  // loudly too, not silently patch those tfs to 0.0.
  const std::uint32_t one_id = 5;
  const double one_val = 0.5;  // exception
  std::vector<std::uint8_t> one;
  codec::encode_list(one, &one_id, &one_val, 1);
  ASSERT_EQ(one.size(), 12u);  // tag, code, exc count, f64, delta
  ASSERT_EQ(one[2], 1u);
  one[2] = 0;
  got_ids.clear();
  got_vals.clear();
  EXPECT_THROW(codec::decode_list(one.data(), one.size(), 1, got_ids,
                                  got_vals),
               std::runtime_error);
}

TEST(QuantizeTf, NanAndInfAreExceptions) {
  EXPECT_EQ(codec::quantize_tf(std::nan("")), 0);
  EXPECT_EQ(codec::quantize_tf(std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(codec::quantize_tf(-std::numeric_limits<double>::infinity()), 0);
}

TEST(ListCodec, SingleEntryAndIdZero) {
  expect_round_trip({0}, {3.0});
  expect_round_trip({4096}, {0.25});
}

TEST(ListCodec, ExactBlockBoundaries) {
  for (std::size_t n :
       {codec::kBlockSize - 1, codec::kBlockSize, codec::kBlockSize + 1,
        3 * codec::kBlockSize, 3 * codec::kBlockSize + 7}) {
    std::vector<std::uint32_t> ids(n);
    std::vector<double> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<std::uint32_t>(3 * i + 1);
      vals[i] = static_cast<double>(i % 300);  // codes and exceptions mixed
    }
    expect_round_trip(ids, vals);
  }
}

TEST(ListCodec, RandomListsRoundTrip) {
  common::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint32_t> ids;
    std::vector<double> vals;
    std::uint32_t id = 0;
    const std::size_t n = rng.uniform_index(500);
    for (std::size_t i = 0; i < n; ++i) {
      id += 1 + static_cast<std::uint32_t>(rng.uniform_index(1u << 14));
      ids.push_back(id);
      switch (rng.uniform_index(4)) {
        case 0:
          vals.push_back(1.0 + static_cast<double>(rng.uniform_index(255)));
          break;
        case 1:
          vals.push_back(rng.uniform(0.0, 1.0));  // fractional -> exception
          break;
        case 2:
          vals.push_back(1000.0 + rng.uniform());  // large -> exception
          break;
        default:
          vals.push_back(static_cast<double>(rng.uniform_index(3)));  // 0/1/2
      }
    }
    expect_round_trip(ids, vals);
  }
}

TEST(ListCodec, GroupVarintFallbackBeatsVarintOnTwoByteDeltas) {
  // Deltas in [128, 255] cost 2 varint bytes but only 1 group-varint data
  // byte + 1/4 control byte, so the encoder must pick the group layout —
  // and a dense list (delta 1) must pick plain varint. Both decode alike;
  // this asserts the size advantage that proves the fallback engaged.
  std::vector<std::uint32_t> sparse_ids, dense_ids;
  std::vector<double> vals;
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < codec::kBlockSize; ++i) {
    id += 200;
    sparse_ids.push_back(id);
    dense_ids.push_back(static_cast<std::uint32_t>(i));
    vals.push_back(1.0);
  }
  std::vector<std::uint8_t> sparse_buf, dense_buf;
  codec::encode_list(sparse_buf, sparse_ids.data(), vals.data(),
                     sparse_ids.size());
  codec::encode_list(dense_buf, dense_ids.data(), vals.data(),
                     dense_ids.size());
  // Group: 1 tag + 32 control + 128 data + tfs/exc; varint would be 1 + 256.
  const std::size_t overhead = 1 + codec::kBlockSize + 1;  // tag + tfs + exc
  EXPECT_EQ(sparse_buf.size(), overhead + 32 + codec::kBlockSize);
  EXPECT_EQ(dense_buf.size(), overhead + codec::kBlockSize);
  expect_round_trip(sparse_ids, vals);
  expect_round_trip(dense_ids, vals);
}

CompressedPostings three_term_postings() {
  // term 0: 3 postings, term 1: none, term 2: 2 postings.
  const std::vector<std::size_t> ptr{0, 3, 3, 5};
  const std::vector<std::uint32_t> docs{1, 5, 9, 0, 200};
  const std::vector<double> tfs{1.0, 2.5, 300.0, 7.0, 1.0};
  return CompressedPostings(ptr, docs, tfs);
}

TEST(CompressedPostingsTest, DecodeTermMatchesInput) {
  const auto p = three_term_postings();
  EXPECT_EQ(p.num_terms(), 3u);
  EXPECT_EQ(p.count(0), 3u);
  EXPECT_EQ(p.count(1), 0u);
  EXPECT_EQ(p.count(2), 2u);
  EXPECT_EQ(p.count(9), 0u);
  EXPECT_EQ(p.total_postings(), 5u);

  std::vector<std::uint32_t> docs;
  std::vector<double> tfs;
  p.decode_term(0, docs, tfs);
  EXPECT_EQ(docs, (std::vector<std::uint32_t>{1, 5, 9}));
  EXPECT_EQ(tfs, (std::vector<double>{1.0, 2.5, 300.0}));
  p.decode_term(1, docs, tfs);
  EXPECT_TRUE(docs.empty());
  p.decode_term(2, docs, tfs);
  EXPECT_EQ(docs, (std::vector<std::uint32_t>{0, 200}));
  p.decode_term(7, docs, tfs);  // out of range is safe
  EXPECT_TRUE(docs.empty());
}

TEST(ScanTest, WalksBlocksWithExactValues) {
  // One long term spanning several blocks, docs strided so deltas vary.
  // The sqrt reconstruction (LUT for codes, std::sqrt for exceptions) is
  // exactly what the tf-idf scoring loop does, asserted bit-exact here.
  const std::size_t n = 5 * codec::kBlockSize + 13;
  std::vector<std::size_t> ptr{0, n};
  std::vector<std::uint32_t> docs(n);
  std::vector<double> tfs(n);
  for (std::size_t i = 0; i < n; ++i) {
    docs[i] = static_cast<std::uint32_t>(i * i / 8 + i);  // growing gaps
    tfs[i] = (i % 7 == 0) ? 0.125 * static_cast<double>(i)
                          : static_cast<double>(i % 250 + 1);
  }
  const CompressedPostings p(ptr, docs, tfs);

  std::size_t seen = 0;
  p.scan(0, [&](std::uint32_t doc, std::uint8_t code, double exc) {
    ASSERT_LT(seen, n);
    ASSERT_EQ(doc, docs[seen]);
    const double tf = code != 0 ? static_cast<double>(code) : exc;
    ASSERT_EQ(tf, tfs[seen]);
    const double sqrt_tf =
        code != 0 ? codec::kSqrtLut[code] : std::sqrt(exc);
    ASSERT_EQ(sqrt_tf, std::sqrt(tfs[seen]));  // bit-exact
    ++seen;
  });
  EXPECT_EQ(seen, n);
}

TEST(ScanTest, WideDeltasDecodeThroughEveryVarintWidth) {
  // Gaps spanning 1..5 varint bytes, including the u32 extremes, exercise
  // the fast-path tiers of get_varint32.
  const std::vector<std::uint32_t> ids{0,        1,        127,       128,
                                       16384,    2097152,  268435456,
                                       0x7FFFFFFFu, 0xFFFFFFFEu};
  const std::vector<double> vals(ids.size(), 3.0);
  std::vector<std::size_t> ptr{0, ids.size()};
  const CompressedPostings p(ptr, ids, vals);
  std::size_t seen = 0;
  p.scan(0, [&](std::uint32_t doc, std::uint8_t code, double) {
    ASSERT_EQ(doc, ids[seen]);
    EXPECT_EQ(code, 3);
    ++seen;
  });
  EXPECT_EQ(seen, ids.size());
}

TEST(ScanTest, EmptyAndOutOfRangeTermsVisitNothing) {
  const auto p = three_term_postings();
  std::size_t calls = 0;
  const auto count = [&](std::uint32_t, std::uint8_t, double) { ++calls; };
  p.scan(1, count);
  p.scan(42, count);
  EXPECT_EQ(calls, 0u);
}

TEST(CompressedPostingsTest, CompressesTypicalPostingsWell) {
  // Realistic shape: integral small tfs, clustered doc gaps.
  common::Rng rng(123);
  std::vector<std::size_t> ptr{0};
  std::vector<std::uint32_t> docs;
  std::vector<double> tfs;
  for (int t = 0; t < 200; ++t) {
    std::uint32_t d = 0;
    const std::size_t df = 20 + rng.uniform_index(400);
    for (std::size_t i = 0; i < df; ++i) {
      d += 1 + static_cast<std::uint32_t>(rng.uniform_index(50));
      docs.push_back(d);
      tfs.push_back(1.0 + static_cast<double>(rng.uniform_index(8)));
    }
    ptr.push_back(docs.size());
  }
  const CompressedPostings p(ptr, docs, tfs);
  const std::size_t raw =
      docs.size() * (sizeof(std::uint32_t) + 2 * sizeof(double)) +
      ptr.size() * sizeof(std::size_t);
  EXPECT_LT(static_cast<double>(p.compressed_bytes()),
            0.35 * static_cast<double>(raw));
}

}  // namespace
}  // namespace at::search
