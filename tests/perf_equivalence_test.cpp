// Equivalence tests for the CSR/parallel/accumulator perf work:
//  * CSR pool storage under SparseRows matches the row-vector semantics;
//  * deterministic-mode SVD is bit-identical with and without a thread
//    pool, and pool-parallel fold-in/retraining is bit-identical to the
//    sequential order (rows train independently);
//  * the dense-accumulator query scorer reproduces the seed's
//    hash-map/term-at-a-time scorer exactly on randomized corpora.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/svd.h"
#include "services/search/inverted_index.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/sparse_rows.h"
#include "synopsis/updater.h"

namespace at {
namespace {

synopsis::SparseVector random_vector(common::Rng& rng, std::size_t cols,
                                     double fill) {
  synopsis::SparseVector v;
  for (std::size_t c = 0; c < cols; ++c) {
    if (rng.uniform() < fill) {
      v.emplace_back(static_cast<std::uint32_t>(c), 1.0 + rng.uniform(0.0, 4.0));
    }
  }
  return v;
}

synopsis::SparseRows random_rows(std::uint64_t seed, std::size_t n,
                                 std::size_t cols, double fill) {
  common::Rng rng(seed);
  synopsis::SparseRows rows(cols);
  for (std::size_t r = 0; r < n; ++r) rows.add_row(random_vector(rng, cols, fill));
  return rows;
}

// ---------------------------------------------------------------------------
// CSR <-> row-vector equivalence
// ---------------------------------------------------------------------------

TEST(CsrEquivalence, RowViewsMatchInsertedVectors) {
  common::Rng rng(11);
  synopsis::SparseRows rows(64);
  std::vector<synopsis::SparseVector> reference;
  for (int r = 0; r < 50; ++r) {
    auto v = random_vector(rng, 64, 0.3);
    auto copy = v;
    synopsis::normalize(copy);
    reference.push_back(copy);
    rows.add_row(std::move(v));
  }
  ASSERT_EQ(rows.rows(), reference.size());
  for (std::uint32_t r = 0; r < rows.rows(); ++r) {
    EXPECT_EQ(rows.row(r), reference[r]) << "row " << r;
    EXPECT_EQ(rows.row(r).to_vector(), reference[r]);
  }
}

TEST(CsrEquivalence, ReplaceRowShrinkAndGrow) {
  synopsis::SparseRows rows(16);
  rows.add_row({{0, 1.0}, {3, 2.0}, {7, 3.0}});
  rows.add_row({{1, 4.0}, {5, 5.0}});
  const std::size_t before = rows.total_entries();
  EXPECT_EQ(before, 5u);

  // Shrink in place.
  rows.replace_row(0, {{2, 9.0}});
  EXPECT_EQ(rows.total_entries(), 3u);
  EXPECT_DOUBLE_EQ(synopsis::value_at(rows.row(0), 2), 9.0);
  EXPECT_EQ(rows.row(0).size(), 1u);
  // Neighbor row untouched.
  EXPECT_DOUBLE_EQ(synopsis::value_at(rows.row(1), 5), 5.0);

  // Grow (relocates to the pool tail).
  rows.replace_row(0, {{1, 1.0}, {4, 2.0}, {9, 3.0}, {12, 4.0}});
  EXPECT_EQ(rows.total_entries(), 6u);
  EXPECT_EQ(rows.row(0).size(), 4u);
  EXPECT_DOUBLE_EQ(synopsis::value_at(rows.row(0), 12), 4.0);
  EXPECT_DOUBLE_EQ(synopsis::value_at(rows.row(1), 1), 4.0);
}

TEST(CsrEquivalence, CompactionBoundsPoolGrowth) {
  // Repeated grown replacements used to leak the pool (every grow orphaned
  // the old slot); compaction must keep dead slots at <= 25% of live ones
  // and rebuild every extent so views stay valid.
  synopsis::SparseRows rows(64);
  common::Rng rng(17);
  std::vector<synopsis::SparseVector> reference;
  for (int r = 0; r < 20; ++r) {
    auto v = random_vector(rng, 64, 0.2);
    synopsis::normalize(v);
    reference.push_back(v);
    rows.add_row(std::move(v));
  }
  for (int round = 0; round < 40; ++round) {
    const auto r = static_cast<std::uint32_t>(rng.uniform_index(20));
    auto v = random_vector(rng, 64, 0.5);  // denser -> usually grows
    synopsis::normalize(v);
    reference[r] = v;
    rows.replace_row(r, std::move(v));
    ASSERT_LE(rows.dead_entries() * 4, rows.total_entries())
        << "round " << round;
    ASSERT_EQ(rows.pool_entries(), rows.total_entries() + rows.dead_entries());
  }
  // Views read back the latest contents after any number of compactions.
  for (std::uint32_t r = 0; r < rows.rows(); ++r)
    EXPECT_EQ(rows.row(r), reference[r]) << "row " << r;
  rows.compact();
  EXPECT_EQ(rows.dead_entries(), 0u);
  EXPECT_EQ(rows.pool_entries(), rows.total_entries());
  for (std::uint32_t r = 0; r < rows.rows(); ++r)
    EXPECT_EQ(rows.row(r), reference[r]) << "row " << r;
}

TEST(CsrEquivalence, CompactedDatasetMatchesUncompacted) {
  auto rows = random_rows(53, 25, 32, 0.3);
  common::Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    rows.replace_row(static_cast<std::uint32_t>(rng.uniform_index(25)),
                     random_vector(rng, 32, 0.45));
  }
  const auto ds = rows.to_dataset();
  ASSERT_EQ(ds.entries.size(), rows.total_entries());
  for (std::size_t r = 0; r < ds.rows; ++r) {
    const auto rv = rows.row(static_cast<std::uint32_t>(r));
    ASSERT_EQ(rv.size(), ds.row_ptr[r + 1] - ds.row_ptr[r]);
    for (std::size_t i = 0; i < rv.size(); ++i) {
      EXPECT_EQ(rv[i].first, ds.col_idx[ds.row_ptr[r] + i]);
      EXPECT_DOUBLE_EQ(rv[i].second, ds.values[ds.row_ptr[r] + i]);
    }
  }
}

TEST(CsrEquivalence, DatasetCsrMatchesCooAndRowVectors) {
  auto rows = random_rows(23, 40, 32, 0.25);
  // Poke the hole-handling path too.
  rows.replace_row(3, {{0, 1.0}, {1, 1.0}, {2, 1.0}, {30, 1.0},
                       {31, 1.0}, {5, 1.0}, {6, 1.0}, {7, 1.0},
                       {8, 1.0}, {9, 1.0}, {10, 1.0}, {11, 1.0},
                       {12, 1.0}, {13, 1.0}, {14, 1.0}, {15, 1.0},
                       {16, 1.0}, {17, 1.0}, {18, 1.0}, {19, 1.0},
                       {20, 1.0}});

  const auto ds = rows.to_dataset();
  ASSERT_TRUE(ds.has_csr());
  ASSERT_EQ(ds.entries.size(), ds.col_idx.size());
  ASSERT_EQ(ds.entries.size(), rows.total_entries());
  ASSERT_EQ(ds.row_ptr.size(), rows.rows() + 1);

  // COO and CSR describe the same matrix, in the same row-major order.
  std::size_t k = 0;
  for (std::size_t r = 0; r < ds.rows; ++r) {
    for (std::size_t i = ds.row_ptr[r]; i < ds.row_ptr[r + 1]; ++i, ++k) {
      EXPECT_EQ(ds.entries[k].row, r);
      EXPECT_EQ(ds.entries[k].col, ds.col_idx[i]);
      EXPECT_DOUBLE_EQ(ds.entries[k].value, ds.values[i]);
    }
    // And both match the row view.
    const auto rv = rows.row(static_cast<std::uint32_t>(r));
    ASSERT_EQ(rv.size(), ds.row_ptr[r + 1] - ds.row_ptr[r]);
    for (std::size_t i = 0; i < rv.size(); ++i) {
      EXPECT_EQ(rv[i].first, ds.col_idx[ds.row_ptr[r] + i]);
      EXPECT_DOUBLE_EQ(rv[i].second, ds.values[ds.row_ptr[r] + i]);
    }
  }
}

TEST(CsrEquivalence, BuildCsrFromShuffledCooMatchesToDataset) {
  auto rows = random_rows(31, 30, 24, 0.3);
  const auto ds = rows.to_dataset();

  // Rebuild from a shuffled COO copy: build_csr must restore row-major
  // order (stable within a row).
  linalg::SparseDataset shuffled;
  shuffled.rows = ds.rows;
  shuffled.cols = ds.cols;
  shuffled.entries = ds.entries;
  common::Rng rng(7);
  for (std::size_t i = shuffled.entries.size(); i > 1; --i) {
    std::swap(shuffled.entries[i - 1],
              shuffled.entries[rng.uniform_index(i)]);
  }
  // Keep within-row order stable for comparison: sort by (row, col).
  std::sort(shuffled.entries.begin(), shuffled.entries.end(),
            [](const auto& a, const auto& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  shuffled.build_csr();
  ASSERT_TRUE(shuffled.has_csr());
  EXPECT_EQ(shuffled.row_ptr, ds.row_ptr);
  EXPECT_EQ(shuffled.col_idx, ds.col_idx);
  EXPECT_EQ(shuffled.values, ds.values);
}

TEST(CsrEquivalence, TailDatasetReindexesAndReserves) {
  auto rows = random_rows(41, 20, 16, 0.4);
  const auto tail = rows.tail_dataset(15);
  EXPECT_EQ(tail.rows, 5u);
  ASSERT_TRUE(tail.has_csr());
  std::size_t expect = 0;
  for (std::uint32_t r = 15; r < 20; ++r) expect += rows.row(r).size();
  EXPECT_EQ(tail.col_idx.size(), expect);
  EXPECT_GE(tail.entries.capacity(), tail.entries.size());
  for (const auto& e : tail.entries) EXPECT_LT(e.row, 5u);
}

// ---------------------------------------------------------------------------
// Deterministic / parallel SVD
// ---------------------------------------------------------------------------

void expect_same_model(const linalg::SvdModel& a, const linalg::SvdModel& b) {
  ASSERT_EQ(a.row_factors.rows(), b.row_factors.rows());
  ASSERT_EQ(a.row_factors.cols(), b.row_factors.cols());
  for (std::size_t r = 0; r < a.row_factors.rows(); ++r)
    for (std::size_t d = 0; d < a.row_factors.cols(); ++d)
      ASSERT_EQ(a.row_factors(r, d), b.row_factors(r, d))
          << "row factor (" << r << "," << d << ")";
  ASSERT_EQ(a.col_factors.rows(), b.col_factors.rows());
  for (std::size_t r = 0; r < a.col_factors.rows(); ++r)
    for (std::size_t d = 0; d < a.col_factors.cols(); ++d)
      ASSERT_EQ(a.col_factors(r, d), b.col_factors(r, d))
          << "col factor (" << r << "," << d << ")";
  ASSERT_EQ(a.row_bias, b.row_bias);
  ASSERT_EQ(a.col_bias, b.col_bias);
  ASSERT_EQ(a.global_mean, b.global_mean);
}

TEST(ParallelSvd, DeterministicModeIgnoresPoolBitIdentical) {
  auto rows = random_rows(5, 80, 40, 0.2);
  const auto ds = rows.to_dataset();
  for (bool biases : {false, true}) {
    linalg::SvdConfig cfg;
    cfg.rank = 3;
    cfg.epochs_per_dim = 25;
    cfg.use_biases = biases;
    cfg.deterministic = true;

    const auto sequential = linalg::incremental_svd(ds, cfg, nullptr);
    common::ThreadPool pool(4);
    const auto pooled = linalg::incremental_svd(ds, cfg, &pool);
    expect_same_model(sequential, pooled);
    EXPECT_EQ(sequential.train_rmse, pooled.train_rmse);
  }
}

TEST(ParallelSvd, FoldInParallelBitIdenticalToSequential) {
  auto rows = random_rows(6, 60, 30, 0.25);
  linalg::SvdConfig cfg;
  cfg.rank = 3;
  cfg.epochs_per_dim = 20;

  const auto base = linalg::incremental_svd(rows.to_dataset(), cfg);
  common::Rng rng(99);
  synopsis::SparseRows grown_rows = rows;
  const auto first_new = static_cast<std::uint32_t>(grown_rows.rows());
  for (int i = 0; i < 12; ++i) grown_rows.add_row(random_vector(rng, 30, 0.3));
  const auto tail = grown_rows.tail_dataset(first_new);

  auto seq_model = base;
  linalg::fold_in_rows(seq_model, tail, cfg, nullptr);

  auto par_model = base;
  common::ThreadPool pool(4);
  linalg::fold_in_rows(par_model, tail, cfg, &pool);

  expect_same_model(seq_model, par_model);
}

TEST(ParallelSvd, HogwildConvergesToComparableRmse) {
  auto rows = random_rows(7, 120, 50, 0.2);
  const auto ds = rows.to_dataset();
  linalg::SvdConfig cfg;
  cfg.rank = 3;
  cfg.epochs_per_dim = 40;

  const auto sequential = linalg::incremental_svd(ds, cfg);
  cfg.deterministic = false;
  common::ThreadPool pool(4);
  const auto hogwild = linalg::incremental_svd(ds, cfg, &pool);

  // Hogwild races perturb the trajectory, not the quality.
  EXPECT_NEAR(hogwild.train_rmse, sequential.train_rmse,
              0.25 * sequential.train_rmse + 0.05);
}

TEST(ParallelSvd, UpdaterParallelMatchesSequential) {
  auto rows = random_rows(8, 90, 36, 0.22);
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 30;
  cfg.size_ratio = 10.0;

  auto make_batch = [] {
    synopsis::UpdateBatch batch;
    common::Rng rng(123);
    for (int i = 0; i < 6; ++i) batch.added.push_back(random_vector(rng, 36, 0.3));
    for (int i = 0; i < 8; ++i) {
      batch.changed.emplace_back(
          static_cast<std::uint32_t>(rng.uniform_index(90)),
          random_vector(rng, 36, 0.3));
    }
    return batch;
  };

  synopsis::SynopsisUpdater updater(cfg);

  auto data_a = rows;
  auto s_a = synopsis::SynopsisBuilder(cfg).build(data_a);
  auto syn_a = synopsis::aggregate_all(data_a, s_a.index,
                                       synopsis::AggregationKind::kMean);
  updater.apply(s_a, data_a, syn_a, make_batch(),
                synopsis::AggregationKind::kMean, nullptr);

  auto data_b = rows;
  auto s_b = synopsis::SynopsisBuilder(cfg).build(data_b);
  auto syn_b = synopsis::aggregate_all(data_b, s_b.index,
                                       synopsis::AggregationKind::kMean);
  common::ThreadPool pool(4);
  updater.apply(s_b, data_b, syn_b, make_batch(),
                synopsis::AggregationKind::kMean, &pool);

  expect_same_model(s_a.svd, s_b.svd);
  ASSERT_EQ(s_a.index.size(), s_b.index.size());
  for (std::size_t g = 0; g < s_a.index.size(); ++g) {
    EXPECT_EQ(s_a.index.groups()[g].members, s_b.index.groups()[g].members);
  }
  ASSERT_EQ(syn_a.size(), syn_b.size());
  for (std::size_t g = 0; g < syn_a.size(); ++g) {
    EXPECT_EQ(syn_a.points[g].features, syn_b.points[g].features);
  }
}

// ---------------------------------------------------------------------------
// Accumulator scorer vs the seed's hash-map scorer
// ---------------------------------------------------------------------------

/// The seed implementation of score_query, verbatim semantics: hash-map
/// accumulation per posting in term order, then emit positive scores.
std::vector<search::ScoredDoc> seed_score_query(
    const search::InvertedIndex& idx, const std::vector<std::uint32_t>& terms,
    std::uint64_t base) {
  auto term_doc_score = [&](double tf, double idf, double doc_len) {
    if (tf <= 0.0 || idf <= 0.0) return 0.0;
    if (idx.scorer().scorer == search::Scorer::kBm25) {
      const double k1 = idx.scorer().bm25_k1;
      const double b = idx.scorer().bm25_b;
      const double avg =
          idx.mean_doc_length() > 0.0 ? idx.mean_doc_length() : 1.0;
      const double norm = k1 * (1.0 - b + b * doc_len / avg);
      return idf * (tf * (k1 + 1.0)) / (tf + norm);
    }
    const double len_norm = doc_len > 0.0 ? 1.0 / std::sqrt(doc_len) : 0.0;
    return std::sqrt(tf) * idf * len_norm;
  };
  std::unordered_map<std::uint32_t, double> acc;
  for (auto term : terms) {
    const double w = idx.idf(term);
    if (w <= 0.0) continue;
    for (const auto& p : idx.postings(term)) {
      acc[p.doc] += term_doc_score(p.tf, w, idx.doc_length(p.doc));
    }
  }
  std::vector<search::ScoredDoc> out;
  out.reserve(acc.size());
  for (const auto& [doc, score] : acc) {
    if (score <= 0.0) continue;
    out.push_back(search::ScoredDoc{score, base + doc});
  }
  return out;
}

void sort_by_doc(std::vector<search::ScoredDoc>& v) {
  std::sort(v.begin(), v.end(),
            [](const auto& a, const auto& b) { return a.doc < b.doc; });
}

TEST(AccumulatorScorer, MatchesSeedScorerOnRandomCorpora) {
  for (std::uint64_t seed : {101u, 202u, 303u}) {
    for (auto scorer : {search::Scorer::kTfIdf, search::Scorer::kBm25}) {
      auto docs = random_rows(seed, 60, 80, 0.15);
      search::ScorerParams params;
      params.scorer = scorer;
      search::InvertedIndex idx(docs, params);

      common::Rng rng(seed * 7);
      for (int q = 0; q < 25; ++q) {
        std::vector<std::uint32_t> terms;
        const std::size_t len = 1 + rng.uniform_index(5);
        for (std::size_t t = 0; t < len; ++t) {
          // Mix in out-of-vocabulary terms.
          terms.push_back(static_cast<std::uint32_t>(rng.uniform_index(90)));
        }
        auto expected = seed_score_query(idx, terms, 1000);
        std::vector<search::ScoredDoc> got;
        idx.score_query(terms, 1000, got);
        sort_by_doc(expected);
        sort_by_doc(got);
        ASSERT_EQ(got.size(), expected.size())
            << "seed " << seed << " query " << q;
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].doc, expected[i].doc);
          EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
        }
        // Fused top-k equals "seed scoring then TopK".
        search::TopK ref_top(10);
        for (const auto& d : expected) ref_top.offer(d);
        const auto ref = ref_top.take();
        const auto fused = idx.topk(terms, 1000, 10);
        ASSERT_EQ(fused.size(), ref.size());
        for (std::size_t i = 0; i < fused.size(); ++i) {
          EXPECT_EQ(fused[i].doc, ref[i].doc);
          EXPECT_DOUBLE_EQ(fused[i].score, ref[i].score);
        }
      }
    }
  }
}

TEST(AccumulatorScorer, ScratchReuseAcrossDifferentIndexSizes) {
  // The thread-local scratch must resize/invalidate correctly when the
  // same thread scores against indexes of different doc counts.
  auto small = random_rows(1, 10, 20, 0.4);
  auto large = random_rows(2, 200, 20, 0.2);
  search::InvertedIndex idx_small(small);
  search::InvertedIndex idx_large(large);
  const std::vector<std::uint32_t> q{0, 1, 2, 3};
  for (int round = 0; round < 3; ++round) {
    auto a = seed_score_query(idx_large, q, 0);
    std::vector<search::ScoredDoc> b;
    idx_large.score_query(q, 0, b);
    sort_by_doc(a);
    sort_by_doc(b);
    ASSERT_EQ(a.size(), b.size());
    auto c = seed_score_query(idx_small, q, 0);
    std::vector<search::ScoredDoc> d;
    idx_small.score_query(q, 0, d);
    sort_by_doc(c);
    sort_by_doc(d);
    ASSERT_EQ(c.size(), d.size());
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_DOUBLE_EQ(c[i].score, d[i].score);
  }
}

}  // namespace
}  // namespace at
