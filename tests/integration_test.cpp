// End-to-end integration tests: full pipeline (workload generation ->
// synopsis construction -> cluster simulation -> accuracy replay) for both
// services, asserting the paper's qualitative results as properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include <atomic>
#include <future>

#include "core/fanout.h"
#include "services/recommender/service.h"
#include "services/search/service.h"
#include "sim/arrivals.h"
#include "sim/cluster.h"
#include "workload/corpus.h"
#include "workload/ratings.h"

namespace at {
namespace {

synopsis::BuildConfig build_config(double size_ratio = 12.0) {
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 40;
  cfg.size_ratio = size_ratio;
  return cfg;
}

/// Builds outcome lookup from sim details.
template <typename Detail>
std::unordered_map<std::uint64_t, const Detail*> detail_map(
    const std::vector<Detail>& details) {
  std::unordered_map<std::uint64_t, const Detail*> map;
  for (const auto& d : details) map[d.request_id] = &d;
  return map;
}

class CfPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::RatingConfig wcfg;
    wcfg.num_components = 4;
    wcfg.users_per_component = 120;
    wcfg.num_items = 60;
    wcfg.num_clusters = 6;
    wcfg.seed = 99;
    workload::RatingWorkloadGen gen(wcfg);
    workload_ = gen.generate(40, 2);

    std::vector<reco::RecommenderComponent> comps;
    for (auto& subset : workload_.subsets)
      comps.emplace_back(std::move(subset), build_config());
    service_ = std::make_unique<reco::CfService>(std::move(comps), 1.0, 5.0);

    sim::SimConfig scfg;
    scfg.num_components = 4;
    scfg.num_nodes = 2;
    scfg.deadline_ms = 100.0;
    // Exact scan: 120 users * 600us = 72 ms (under the deadline when idle,
    // like the paper's 76 ms light-load latency); capacity ~14 rps, so the
    // 40 rps experiments are deep overload. The synopsis (~10 aggregated
    // users) costs ~6 ms, so AccuracyTrader stays stable at every rate.
    scfg.us_per_point = 600.0;
    scfg.synopsis_point_factor = 1.0;
    scfg.session_length_s = 1e9;
    scfg.interference.enabled = true;
    profiles_.clear();
    for (std::size_t c = 0; c < 4; ++c) {
      sim::ComponentProfile p;
      p.num_points =
          static_cast<std::uint32_t>(service_->component(c).num_users());
      p.group_sizes = service_->component(c).group_sizes();
      profiles_.push_back(std::move(p));
    }
    sim_ = std::make_unique<sim::ClusterSim>(scfg, profiles_);
  }

  /// Runs the sim at `rate` and replays outcomes onto the CF service.
  reco::CfEvalResult eval_technique(core::Technique tech, double rate,
                                    sim::SimResult* sim_out = nullptr) {
    common::Rng rng(1234);
    const auto arrivals = sim::poisson_arrivals(
        rate, 20.0, rng);
    auto result = sim_->run(tech, arrivals);
    const auto map = detail_map(result.details);
    // Round-robin the evaluation request set over the simulated requests.
    std::vector<reco::CfRequest> reqs;
    std::vector<double> actuals;
    std::vector<std::vector<core::ComponentOutcome>> outcomes;
    std::size_t k = 0;
    for (const auto& d : result.details) {
      if (k >= workload_.requests.size()) break;
      reqs.push_back(workload_.requests[k]);
      actuals.push_back(workload_.actuals[k]);
      outcomes.push_back(d.outcomes);
      ++k;
    }
    if (sim_out != nullptr) *sim_out = std::move(result);
    if (reqs.empty()) return {};
    return service_->evaluate(reqs, actuals, tech,
                              [&outcomes](std::size_t r) {
                                return outcomes[r];
                              });
  }

  workload::RatingWorkload workload_;
  std::unique_ptr<reco::CfService> service_;
  std::vector<sim::ComponentProfile> profiles_;
  std::unique_ptr<sim::ClusterSim> sim_;
};

TEST_F(CfPipeline, Table1Shape_AccuracyTraderBoundsTailUnderOverload) {
  // The AT tail stays within a small multiple of the deadline (the paper
  // reports "slightly longer than the required 100ms"; our overshoot is
  // larger because 4 components mean coarse 30-user sets and the last set
  // started before the deadline may run under an interference slowdown),
  // while Basic's queues grow without bound.
  sim::SimResult at_sim, basic_sim;
  eval_technique(core::Technique::kAccuracyTrader, 40.0, &at_sim);
  eval_technique(core::Technique::kBasic, 40.0, &basic_sim);
  EXPECT_LT(at_sim.p999_component_ms(), 800.0);
  EXPECT_GT(basic_sim.p999_component_ms(), 20.0 * at_sim.p999_component_ms());
}

TEST_F(CfPipeline, Table2Shape_AccuracyTraderLossSmallerThanPartial) {
  const auto partial =
      eval_technique(core::Technique::kPartialExecution, 40.0);
  const auto at = eval_technique(core::Technique::kAccuracyTrader, 40.0);
  ASSERT_GT(partial.requests, 0u);
  ASSERT_GT(at.requests, 0u);
  EXPECT_LT(at.loss_pct, partial.loss_pct);
  EXPECT_LT(at.loss_pct, 25.0);  // small losses even when overloaded
}

TEST_F(CfPipeline, LightLoadLossesAreSmallForBoth) {
  // Note the scale difference vs. the paper: dropping one straggling
  // component here discards 25% of the corpus (4 components) instead of
  // ~1% (108 components), so partial execution's light-load loss is
  // proportionally larger than the paper's 0.26%.
  const auto partial =
      eval_technique(core::Technique::kPartialExecution, 1.0);
  const auto at = eval_technique(core::Technique::kAccuracyTrader, 1.0);
  EXPECT_LT(partial.loss_pct, 30.0);
  EXPECT_LT(at.loss_pct, 15.0);
}

TEST_F(CfPipeline, ReissueHelpsOnlyAtLightLoad) {
  sim::SimResult light_reissue, light_basic, heavy_reissue, heavy_at;
  eval_technique(core::Technique::kRequestReissue, 1.0, &light_reissue);
  eval_technique(core::Technique::kBasic, 1.0, &light_basic);
  eval_technique(core::Technique::kRequestReissue, 40.0, &heavy_reissue);
  eval_technique(core::Technique::kAccuracyTrader, 40.0, &heavy_at);
  // Light load: reissue comparable to basic (within 2x).
  EXPECT_LT(light_reissue.p999_component_ms(),
            2.0 * light_basic.p999_component_ms() + 10.0);
  // Heavy load: reissue queues explode; AccuracyTrader stays bounded.
  EXPECT_GT(heavy_reissue.p999_component_ms(),
            5.0 * heavy_at.p999_component_ms());
}

class SearchPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CorpusConfig ccfg;
    ccfg.num_components = 4;
    ccfg.docs_per_component = 150;
    ccfg.vocab_size = 600;
    ccfg.num_topics = 10;
    ccfg.topic_vocab = 50;
    ccfg.seed = 77;
    workload::CorpusGen gen(ccfg);
    auto wl = gen.generate(40);
    queries_ = std::move(wl.queries);

    std::vector<search::SearchComponent> comps;
    std::uint64_t base = 0;
    for (auto& shard : wl.shards) {
      const auto n = shard.rows();
      // Finer groups for search: more, cheaper ranked sets fit the
      // deadline, mirroring the paper's small (42.55-page) groups.
      comps.emplace_back(std::move(shard), base, build_config(6.0));
      base += n;
    }
    service_ =
        std::make_unique<search::SearchService>(std::move(comps), 10);

    sim::SimConfig scfg;
    scfg.num_components = 4;
    scfg.num_nodes = 2;
    scfg.deadline_ms = 100.0;
    scfg.us_per_point = 500.0;  // exact = 75ms; synopsis ~6.5ms
    scfg.synopsis_point_factor = 1.0;
    scfg.session_length_s = 1e9;
    scfg.interference.enabled = true;
    std::vector<sim::ComponentProfile> profiles;
    for (std::size_t c = 0; c < 4; ++c) {
      sim::ComponentProfile p;
      p.num_points =
          static_cast<std::uint32_t>(service_->component(c).num_docs());
      p.group_sizes = service_->component(c).group_sizes();
      profiles.push_back(std::move(p));
    }
    sim_ = std::make_unique<sim::ClusterSim>(scfg, std::move(profiles));
  }

  search::SearchEvalResult eval_technique(core::Technique tech, double rate,
                                          sim::SimResult* sim_out = nullptr) {
    common::Rng rng(4321);
    const auto arrivals = sim::poisson_arrivals(rate, 20.0, rng);
    auto result = sim_->run(tech, arrivals);
    std::vector<search::SearchRequest> reqs;
    std::vector<std::vector<core::ComponentOutcome>> outcomes;
    std::size_t k = 0;
    for (const auto& d : result.details) {
      if (k >= queries_.size()) break;
      reqs.push_back(queries_[k]);
      outcomes.push_back(d.outcomes);
      ++k;
    }
    if (sim_out != nullptr) *sim_out = std::move(result);
    if (reqs.empty()) return {};
    return service_->evaluate(reqs, tech, [&outcomes](std::size_t r) {
      return outcomes[r];
    });
  }

  std::vector<search::SearchRequest> queries_;
  std::unique_ptr<search::SearchService> service_;
  std::unique_ptr<sim::ClusterSim> sim_;
};

TEST_F(SearchPipeline, Fig5Shape_TailOrderingUnderHeavyLoad) {
  sim::SimResult at, basic, reissue;
  eval_technique(core::Technique::kAccuracyTrader, 40.0, &at);
  eval_technique(core::Technique::kBasic, 40.0, &basic);
  eval_technique(core::Technique::kRequestReissue, 40.0, &reissue);
  EXPECT_GT(basic.p999_component_ms(), reissue.p999_component_ms() * 0.8);
  EXPECT_GT(reissue.p999_component_ms(), at.p999_component_ms() * 2.0);
  EXPECT_LT(at.p999_component_ms(), 800.0);
}

TEST_F(SearchPipeline, Fig6Shape_AccuracyOrderingUnderHeavyLoad) {
  const auto partial =
      eval_technique(core::Technique::kPartialExecution, 40.0);
  const auto at = eval_technique(core::Technique::kAccuracyTrader, 40.0);
  ASSERT_GT(partial.requests, 0u);
  EXPECT_GT(at.accuracy, partial.accuracy);
  EXPECT_LT(at.loss_pct, 60.0);
}

TEST_F(SearchPipeline, AccuracyLossGrowsWithLoadButStaysModest) {
  const auto light = eval_technique(core::Technique::kAccuracyTrader, 2.0);
  const auto heavy = eval_technique(core::Technique::kAccuracyTrader, 40.0);
  EXPECT_LE(light.loss_pct, heavy.loss_pct + 5.0);
  EXPECT_LT(light.loss_pct, 15.0);
  EXPECT_LT(heavy.loss_pct, 60.0);
}

TEST_F(SearchPipeline, PartialCollapsesUnderOverload) {
  const auto heavy =
      eval_technique(core::Technique::kPartialExecution, 40.0);
  EXPECT_GT(heavy.loss_pct, 50.0);
}

// ---------------------------------------------------------------------------
// Live end-to-end: real threads, wall-clock deadlines, real service math —
// the fan-out coordinator serving CF predictions through Algorithm 1.
// ---------------------------------------------------------------------------

TEST(LiveFanOut, CfServiceUnderWallClockDeadline) {
  workload::RatingConfig wcfg;
  wcfg.num_components = 3;
  wcfg.users_per_component = 200;
  wcfg.num_items = 80;
  wcfg.num_clusters = 6;
  wcfg.seed = 404;
  workload::RatingWorkloadGen gen(wcfg);
  auto wl = gen.generate(20, 1);
  ASSERT_FALSE(wl.requests.empty());

  std::vector<reco::RecommenderComponent> comps;
  for (auto& subset : wl.subsets) comps.emplace_back(std::move(subset),
                                                     build_config());

  core::RuntimeConfig rcfg;
  rcfg.algorithm.deadline_ms = 50.0;
  core::FanOutCoordinator coord(rcfg, comps.size());

  // Serve every request through the live pipeline and check the merged
  // prediction equals the offline exact computation whenever all sets
  // were processed (generous deadline, tiny data).
  std::atomic<int> mismatches{0};
  std::vector<std::future<double>> predictions;
  std::vector<std::shared_ptr<std::promise<double>>> promises;
  for (std::size_t r = 0; r < wl.requests.size(); ++r) {
    const auto& request = wl.requests[r];
    auto works =
        std::make_shared<std::vector<reco::CfComponentWork>>(comps.size());
    auto partials =
        std::make_shared<std::vector<reco::CfPartial>>(comps.size());
    auto done = std::make_shared<std::promise<double>>();
    promises.push_back(done);
    predictions.push_back(done->get_future());

    coord.dispatch(
        [&comps, &request, works, partials](std::size_t c) {
          (*works)[c] = comps[c].analyze(request);
          (*partials)[c] = (*works)[c].stage1();
          return (*works)[c].correlations;
        },
        [works, partials](std::size_t c, std::size_t group) {
          (*partials)[c].subtract((*works)[c].agg_by_group[group]);
          (*partials)[c].merge((*works)[c].real_by_group[group]);
        },
        [&request, partials, done](const core::FanOutResult& res) {
          reco::CfPartial merged;
          for (std::size_t c = 0; c < partials->size(); ++c) {
            if (res.components[c].accepted) merged.merge((*partials)[c]);
          }
          done->set_value(reco::predict(request, merged, 1.0, 5.0));
        });
  }
  for (std::size_t r = 0; r < predictions.size(); ++r) {
    const double live = predictions[r].get();
    // Recompute the exact prediction offline.
    reco::CfPartial exact;
    for (auto& comp : comps) exact.merge(comp.analyze(wl.requests[r]).exact());
    const double offline = reco::predict(wl.requests[r], exact, 1.0, 5.0);
    if (std::abs(live - offline) > 1e-6) mismatches++;
  }
  coord.shutdown();
  // With a 50 ms deadline and ~200-user subsets, virtually every request
  // should have processed all sets; allow a small number of slow-machine
  // stragglers that stopped early (they are approximate, not wrong).
  EXPECT_LE(mismatches.load(), static_cast<int>(predictions.size() / 4));
}

}  // namespace
}  // namespace at
