// Search service tests: tokenizer/vocabulary, inverted index vs. naive
// scoring, top-k, component decomposition, service-level techniques.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/artifact.h"
#include "common/failpoint.h"
#include "services/search/component.h"
#include "services/search/inverted_index.h"
#include "services/search/query_cache.h"
#include "services/search/service.h"
#include "services/search/text.h"
#include "services/search/topk.h"
#include "workload/corpus.h"

namespace at::search {
namespace {

synopsis::BuildConfig test_build_config() {
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 40;
  cfg.size_ratio = 10.0;
  return cfg;
}

TEST(Tokenizer, LowercasesAndSplits) {
  const auto tokens = tokenize("Hello, World! C++20 rocks");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "c");
  EXPECT_EQ(tokens[3], "20");
  EXPECT_EQ(tokens[4], "rocks");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("!!! ... ---").empty());
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const auto a = v.intern("apple");
  const auto b = v.intern("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.intern("apple"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.word(a), "apple");
  EXPECT_EQ(v.lookup("cherry"), Vocabulary::kNotFound);
}

TEST(VocabularyTest, TextToCountsAndTerms) {
  Vocabulary v;
  const auto counts = text_to_counts("the cat and the hat", v);
  // "the" appears twice.
  EXPECT_DOUBLE_EQ(synopsis::value_at(counts, v.lookup("the")), 2.0);
  EXPECT_DOUBLE_EQ(synopsis::value_at(counts, v.lookup("cat")), 1.0);
  const auto terms = text_to_terms("cat unknownword", v);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], v.lookup("cat"));
}

TEST(TopKTest, KeepsBestK) {
  TopK top(3);
  for (int i = 0; i < 10; ++i) top.offer(static_cast<double>(i), i);
  const auto r = top.take();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].doc, 9u);
  EXPECT_EQ(r[1].doc, 8u);
  EXPECT_EQ(r[2].doc, 7u);
}

TEST(TopKTest, TieBreaksByDocId) {
  TopK top(2);
  top.offer(1.0, 42);
  top.offer(1.0, 7);
  top.offer(1.0, 99);
  const auto r = top.take();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].doc, 7u);
  EXPECT_EQ(r[1].doc, 42u);
}

TEST(TopKTest, FewerThanK) {
  TopK top(10);
  top.offer(2.0, 1);
  top.offer(1.0, 2);
  const auto r = top.take();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].doc, 1u);
}

TEST(TopKTest, ZeroKThrows) { EXPECT_THROW(TopK(0), std::invalid_argument); }

TEST(TopKTest, OverlapMetric) {
  std::vector<ScoredDoc> actual{{3, 1}, {2, 2}, {1, 3}};
  std::vector<ScoredDoc> retrieved{{9, 1}, {9, 3}, {9, 99}};
  EXPECT_NEAR(topk_overlap(retrieved, actual), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(topk_overlap({}, actual), 0.0);
  EXPECT_DOUBLE_EQ(topk_overlap(retrieved, {}), 1.0);
}

synopsis::SparseRows tiny_docs() {
  synopsis::SparseRows docs(6);
  docs.add_row({{0, 3.0}, {1, 1.0}});           // doc 0: heavy on term 0
  docs.add_row({{1, 2.0}, {2, 2.0}});           // doc 1
  docs.add_row({{0, 1.0}, {2, 1.0}, {3, 1.0}}); // doc 2
  docs.add_row({{4, 5.0}});                     // doc 3: only rare term 4
  return docs;
}

// ---------------------------------------------------------------------------
// ScoreAccumulator epoch/stamp regressions
// ---------------------------------------------------------------------------

TEST(ScoreAccumulatorTest, MultipleQueriesAfterResizeStayIndependent) {
  // Regression: growing the scratch mid-stream must not let the freshly
  // zero-stamped slots (or stale small-index stamps) read as "already
  // touched", and repeated queries must never accumulate across epochs.
  ScoreAccumulator acc;
  acc.begin(4);
  acc.add(0, 1.0);
  acc.add(0, 2.0);
  EXPECT_DOUBLE_EQ(acc.score(0), 3.0);

  acc.begin(64);  // resize
  for (int q = 0; q < 3; ++q) {
    acc.begin(64);
    acc.add(0, 1.0);
    acc.add(63, 5.0);
    acc.add(63, 5.0);
    ASSERT_EQ(acc.touched().size(), 2u) << "query " << q;
    EXPECT_DOUBLE_EQ(acc.score(0), 1.0) << "query " << q;
    EXPECT_DOUBLE_EQ(acc.score(63), 10.0) << "query " << q;
  }
}

TEST(ScoreAccumulatorTest, EpochWraparoundClearsStamps) {
  ScoreAccumulator acc;
  acc.begin(8);
  acc.add(2, 7.0);  // stamp slot 2 with a pre-wrap epoch
  acc.set_epoch_for_test(0xFFFFFFFFu);
  for (int q = 0; q < 3; ++q) {  // crosses the wrap on the first begin
    acc.begin(8);
    EXPECT_NE(acc.epoch(), 0u) << "epoch 0 is reserved for cleared stamps";
    acc.add(2, 1.0);
    acc.add(5, 2.0);
    ASSERT_EQ(acc.touched().size(), 2u) << "query " << q;
    EXPECT_DOUBLE_EQ(acc.score(2), 1.0) << "stale stamp resurrected";
    EXPECT_DOUBLE_EQ(acc.score(5), 2.0);
  }
}

TEST(ScoreAccumulatorTest, WrapThenResizeKeepsNewSlotsUntouched) {
  ScoreAccumulator acc;
  acc.set_epoch_for_test(0xFFFFFFFEu);
  acc.begin(4);   // epoch -> 0xFFFFFFFF
  acc.begin(4);   // wraps: stamps cleared, epoch -> 1
  acc.begin(16);  // resize right after the wrap: new slots stamped 0
  acc.add(10, 4.0);
  acc.add(1, 2.0);
  ASSERT_EQ(acc.touched().size(), 2u);
  EXPECT_DOUBLE_EQ(acc.score(10), 4.0);
  EXPECT_DOUBLE_EQ(acc.score(1), 2.0);
}

TEST(ScoreAccumulatorTest, BulkFreshPathMatchesSlowPathExactly) {
  // Parity guard for the fresh-epoch fast path: bulk_add_fresh must leave
  // the accumulator in the exact state of per-posting add() calls — same
  // scores, same touched order, and identical interaction with later
  // stamped adds.
  const std::uint32_t docs[] = {3, 7, 8, 20, 21, 22, 40};
  const double scores[] = {0.5, 1.25, -2.0, 0.0, 3.5, 7.0, 0.125};
  const std::size_t n = sizeof(docs) / sizeof(docs[0]);

  ScoreAccumulator slow, fast;
  slow.begin(64);
  for (std::size_t i = 0; i < n; ++i) slow.add(docs[i], scores[i]);
  fast.begin(64);
  fast.bulk_add_fresh(docs, scores, n);
  ASSERT_EQ(fast.touched(), slow.touched());
  for (auto d : slow.touched()) EXPECT_EQ(fast.score(d), slow.score(d));

  // Second-term adds (stamped path) behave identically on both.
  const std::uint32_t docs2[] = {7, 8, 9};
  for (auto* acc : {&slow, &fast}) {
    acc->add(docs2[0], 1.0);
    acc->add(docs2[1], 2.0);
    acc->add(docs2[2], 4.0);
  }
  ASSERT_EQ(fast.touched(), slow.touched());
  for (auto d : slow.touched()) EXPECT_EQ(fast.score(d), slow.score(d));
}

TEST(InvertedIndexTest, FirstTermFastPathParityWithRepeatedTerms) {
  // End-to-end parity: the accumulate() fast path kicks in for the first
  // scored term; a query repeating that term must still double its
  // contribution (the repeat takes the stamped path).
  auto docs = tiny_docs();
  const InvertedIndex idx(docs);
  const auto once = idx.topk({0}, 0, 10);
  const auto twice = idx.topk({0, 0}, 0, 10);
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(twice[i].doc, once[i].doc);
    EXPECT_DOUBLE_EQ(twice[i].score, 2.0 * once[i].score);
  }
}

TEST(InvertedIndexTest, RepeatedQueriesAfterIndexGrowthMatchFreshIndex) {
  // Thread-local scratch resizes when a bigger index scores on the same
  // thread; >1 query after the resize must still match a cold computation.
  auto small = tiny_docs();
  const InvertedIndex idx_small(small);
  (void)idx_small.topk({0, 2}, 0, 5);

  synopsis::SparseRows big(6);
  for (int i = 0; i < 40; ++i)
    big.add_row({{static_cast<std::uint32_t>(i % 6), 1.0 + i % 3}});
  const InvertedIndex idx_big(big);
  for (int q = 0; q < 3; ++q) {
    std::vector<ScoredDoc> scored;
    idx_big.score_query({0, 1, 2}, 0, scored);
    for (const auto& sd : scored) {
      const auto d = static_cast<std::uint32_t>(sd.doc);
      double raw = 0.0;
      for (std::uint32_t t : {0u, 1u, 2u}) {
        const double tf = synopsis::value_at(big.row(d), t);
        if (tf > 0) raw += std::sqrt(tf) * idx_big.idf(t);
      }
      EXPECT_NEAR(sd.score, raw / std::sqrt(idx_big.doc_length(d)), 1e-12)
          << "query " << q << " doc " << d;
    }
  }
}

TEST(InvertedIndexTest, PostingsAndDf) {
  const InvertedIndex idx(tiny_docs());
  EXPECT_EQ(idx.num_docs(), 4u);
  EXPECT_EQ(idx.doc_frequency(0), 2u);
  EXPECT_EQ(idx.doc_frequency(4), 1u);
  EXPECT_EQ(idx.doc_frequency(5), 0u);
  EXPECT_EQ(idx.postings(0).size(), 2u);
  EXPECT_DOUBLE_EQ(idx.doc_length(0), 4.0);
}

TEST(InvertedIndexTest, UnknownTermSafe) {
  const InvertedIndex idx(tiny_docs());
  EXPECT_TRUE(idx.postings(100).empty());
  EXPECT_EQ(idx.doc_frequency(100), 0u);
  const auto r = idx.topk({100}, 0, 5);
  EXPECT_TRUE(r.empty());
}

TEST(InvertedIndexTest, ScoreMatchesNaiveFormula) {
  const auto docs = tiny_docs();
  const InvertedIndex idx(docs);
  const std::vector<std::uint32_t> q{0, 2};
  std::vector<ScoredDoc> scored;
  idx.score_query(q, 0, scored);

  // Naive recomputation per doc.
  for (const auto& sd : scored) {
    const auto d = static_cast<std::uint32_t>(sd.doc);
    double raw = 0.0;
    for (auto t : q) {
      const double tf = synopsis::value_at(docs.row(d), t);
      if (tf > 0) raw += std::sqrt(tf) * idx.idf(t);
    }
    const double expect = raw / std::sqrt(idx.doc_length(d));
    EXPECT_NEAR(sd.score, expect, 1e-12) << "doc " << d;
  }
  // Only matching docs are scored: doc 3 matches neither term.
  for (const auto& sd : scored) EXPECT_NE(sd.doc, 3u);
}

TEST(InvertedIndexTest, IdfPenalizesCommonTerms) {
  const InvertedIndex idx(tiny_docs());
  EXPECT_GT(idx.idf(4), idx.idf(0));  // rarer term, higher idf
}

TEST(InvertedIndexTest, GlobalIdfOverride) {
  InvertedIndex idx(tiny_docs());
  auto idf = std::make_shared<const std::vector<double>>(
      std::vector<double>{10.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  idx.set_global_idf(idf);
  const auto r = idx.topk({0, 4}, 0, 4);
  ASSERT_FALSE(r.empty());
  // With idf(4) forced to 0, only term-0 docs can score.
  for (const auto& d : r) EXPECT_NE(d.doc, 3u);
}

TEST(InvertedIndexTest, ScoreCountsMatchesDocScoring) {
  const auto docs = tiny_docs();
  const InvertedIndex idx(docs);
  const std::vector<std::uint32_t> q{0, 1};
  // Scoring doc 0's counts through score_counts must equal its score.
  std::vector<ScoredDoc> scored;
  idx.score_query(q, 0, scored);
  const auto it =
      std::find_if(scored.begin(), scored.end(),
                   [](const ScoredDoc& d) { return d.doc == 0; });
  ASSERT_NE(it, scored.end());
  EXPECT_NEAR(idx.score_counts(q, docs.row(0), idx.doc_length(0)), it->score,
              1e-12);
}

TEST(InvertedIndexTest, SizeStatsCountPostings) {
  const InvertedIndex idx(tiny_docs());
  const auto s = idx.size_stats();
  EXPECT_EQ(s.postings, 8u);  // total entries across the 4 docs
  // tf-idf raw layout: term_ptr (7 * 8B) + 20B per posting.
  EXPECT_EQ(s.raw_bytes, 7 * sizeof(std::size_t) + 8 * 20);
  EXPECT_GT(s.compressed_bytes, 0u);
  EXPECT_GT(s.ratio(), 0.0);
}

TEST(Bm25, MatchesClosedForm) {
  const auto docs = tiny_docs();
  ScorerParams params;
  params.scorer = Scorer::kBm25;
  const InvertedIndex idx(docs, params);
  const std::vector<std::uint32_t> q{0};
  std::vector<ScoredDoc> scored;
  idx.score_query(q, 0, scored);
  ASSERT_FALSE(scored.empty());
  for (const auto& sd : scored) {
    const auto d = static_cast<std::uint32_t>(sd.doc);
    const double tf = synopsis::value_at(docs.row(d), 0);
    const double k1 = params.bm25_k1, b = params.bm25_b;
    const double norm =
        k1 * (1.0 - b + b * idx.doc_length(d) / idx.mean_doc_length());
    const double expect = idx.idf(0) * tf * (k1 + 1.0) / (tf + norm);
    EXPECT_NEAR(sd.score, expect, 1e-12);
  }
}

TEST(Bm25, TermFrequencySaturates) {
  // BM25's tf term saturates: doubling tf far less than doubles the score.
  synopsis::SparseRows docs(2);
  docs.add_row({{0, 1.0}, {1, 9.0}});   // doc 0: tf=1
  docs.add_row({{0, 10.0}});            // doc 1: tf=10, same length
  ScorerParams params;
  params.scorer = Scorer::kBm25;
  const InvertedIndex idx(docs, params);
  std::vector<ScoredDoc> scored;
  idx.score_query({0}, 0, scored);
  ASSERT_EQ(scored.size(), 2u);
  double s0 = 0, s1 = 0;
  for (const auto& d : scored) (d.doc == 0 ? s0 : s1) = d.score;
  EXPECT_GT(s1, s0);            // more matches still scores higher
  EXPECT_LT(s1, s0 * 3.0);      // but nowhere near 10x
}

TEST(Bm25, LongDocsPenalized) {
  synopsis::SparseRows docs(3);
  docs.add_row({{0, 2.0}});                         // short doc
  docs.add_row({{0, 2.0}, {1, 20.0}, {2, 20.0}});   // same tf, much longer
  ScorerParams params;
  params.scorer = Scorer::kBm25;
  const InvertedIndex idx(docs, params);
  std::vector<ScoredDoc> scored;
  idx.score_query({0}, 0, scored);
  ASSERT_EQ(scored.size(), 2u);
  double s_short = 0, s_long = 0;
  for (const auto& d : scored) (d.doc == 0 ? s_short : s_long) = d.score;
  EXPECT_GT(s_short, s_long);
}

TEST(Bm25, MeanDocLengthComputed) {
  const InvertedIndex idx(tiny_docs());
  // Lengths: 4, 4, 3, 5 -> mean 4.
  EXPECT_DOUBLE_EQ(idx.mean_doc_length(), 4.0);
}

TEST(TopKTest, OverlapBounds) {
  common::Rng rng(91);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ScoredDoc> a, b;
    for (int i = 0; i < 10; ++i) {
      a.push_back({rng.uniform(), rng.uniform_index(30)});
      b.push_back({rng.uniform(), rng.uniform_index(30)});
    }
    const double o = topk_overlap(a, b);
    EXPECT_GE(o, 0.0);
    EXPECT_LE(o, 1.0);
    EXPECT_DOUBLE_EQ(topk_overlap(a, a), 1.0);  // self-overlap is perfect
  }
}

// Scorer-agnostic ranking invariants across both scorers.
class ScorerInvariants : public ::testing::TestWithParam<Scorer> {};

TEST_P(ScorerInvariants, ScoresPositiveAndOnlyForMatches) {
  ScorerParams params;
  params.scorer = GetParam();
  const auto docs = tiny_docs();
  const InvertedIndex idx(docs, params);
  for (std::uint32_t term = 0; term < 6; ++term) {
    std::vector<ScoredDoc> scored;
    idx.score_query({term}, 0, scored);
    EXPECT_EQ(scored.size(), idx.doc_frequency(term));
    for (const auto& d : scored) {
      EXPECT_GT(d.score, 0.0);
      EXPECT_GT(synopsis::value_at(docs.row(static_cast<std::uint32_t>(d.doc)),
                                   term),
                0.0);
    }
  }
}

TEST_P(ScorerInvariants, HigherTfScoresHigherAtEqualLength) {
  ScorerParams params;
  params.scorer = GetParam();
  synopsis::SparseRows docs(3);
  docs.add_row({{0, 4.0}, {1, 4.0}});  // tf(0) = 4, length 8
  docs.add_row({{0, 1.0}, {1, 7.0}});  // tf(0) = 1, length 8
  const InvertedIndex idx(docs, params);
  std::vector<ScoredDoc> scored;
  idx.score_query({0}, 0, scored);
  ASSERT_EQ(scored.size(), 2u);
  double s0 = 0, s1 = 0;
  for (const auto& d : scored) (d.doc == 0 ? s0 : s1) = d.score;
  EXPECT_GT(s0, s1);
}

INSTANTIATE_TEST_SUITE_P(Scorers, ScorerInvariants,
                         ::testing::Values(Scorer::kTfIdf, Scorer::kBm25));

TEST(MergeIdf, CombinesDocumentFrequencies) {
  const std::vector<std::vector<std::uint32_t>> dfs{{2, 0}, {1, 1}};
  const auto idf = merge_idf(dfs, 10);
  ASSERT_EQ(idf.size(), 2u);
  EXPECT_NEAR(idf[0], std::log(1.0 + 10.0 / 4.0), 1e-12);
  EXPECT_NEAR(idf[1], std::log(1.0 + 10.0 / 2.0), 1e-12);
  EXPECT_GT(idf[1], idf[0]);
}

// ---------------------------------------------------------------------------
// QueryCache
// ---------------------------------------------------------------------------

TEST(QueryCacheTest, HitMissAndStats) {
  QueryCache cache(4);
  std::vector<ScoredDoc> out;
  EXPECT_FALSE(cache.lookup({1, 2}, &out));
  cache.insert({1, 2}, {{1.0, 7}});
  EXPECT_TRUE(cache.lookup({1, 2}, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].doc, 7u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(QueryCacheTest, KeyCanonicalization) {
  QueryCache cache(4);
  cache.insert({3, 1, 2}, {{1.0, 9}});
  std::vector<ScoredDoc> out;
  EXPECT_TRUE(cache.lookup({2, 3, 1}, &out));   // order-insensitive
  EXPECT_TRUE(cache.lookup({1, 1, 2, 3}, &out));  // dup-insensitive
  EXPECT_FALSE(cache.lookup({1, 2}, &out));
}

TEST(QueryCacheTest, LruEviction) {
  QueryCache cache(2);
  cache.insert({1}, {});
  cache.insert({2}, {});
  EXPECT_TRUE(cache.lookup({1}, nullptr));  // refresh {1}; {2} is LRU now
  cache.insert({3}, {});                    // evicts {2}
  EXPECT_TRUE(cache.lookup({1}, nullptr));
  EXPECT_TRUE(cache.lookup({3}, nullptr));
  EXPECT_FALSE(cache.lookup({2}, nullptr));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(QueryCacheTest, InsertExistingRefreshes) {
  QueryCache cache(2);
  cache.insert({1}, {{1.0, 1}});
  cache.insert({1}, {{2.0, 2}});
  EXPECT_EQ(cache.size(), 1u);
  std::vector<ScoredDoc> out;
  EXPECT_TRUE(cache.lookup({1}, &out));
  EXPECT_EQ(out[0].doc, 2u);
}

TEST(QueryCacheTest, InvalidateAll) {
  QueryCache cache(4);
  cache.insert({1}, {});
  cache.insert({2}, {});
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup({1}, nullptr));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(QueryCacheTest, ZeroCapacityThrows) {
  EXPECT_THROW(QueryCache(0), std::invalid_argument);
}

TEST(QueryCacheTest, StatsAcrossFullLifecycle) {
  // Counter semantics through insert/refresh/evict/invalidate sequences on
  // the hashed index: refreshing an existing key counts neither insertion
  // nor eviction, invalidation clears entries but keeps counters running.
  QueryCache cache(2);
  cache.insert({1}, {});
  cache.insert({2}, {});
  cache.insert({2}, {});  // refresh, not an insertion
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert({3}, {});  // evicts {1}
  cache.insert({4}, {});  // evicts {2}
  EXPECT_EQ(cache.stats().insertions, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_FALSE(cache.lookup({1}, nullptr));
  EXPECT_TRUE(cache.lookup({4}, nullptr));
  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup({4}, nullptr));
  const auto s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 1.0 / 3.0);
  EXPECT_EQ(cache.size(), 0u);
  // The cache keeps working after invalidation (index and list agree).
  cache.insert({5}, {{1.0, 11}});
  std::vector<ScoredDoc> out;
  EXPECT_TRUE(cache.lookup({5}, &out));
  EXPECT_EQ(out[0].doc, 11u);
}

TEST(QueryCacheTest, ManyKeysHashedIndexStaysConsistent) {
  // Churn far past capacity: size never exceeds the bound, the newest
  // window of keys stays resident, and hits equal list membership (the
  // hashed index and the LRU list cannot drift apart).
  QueryCache cache(16);
  for (std::uint32_t i = 0; i < 400; ++i) {
    cache.insert({i, i + 1, i + 2}, {{static_cast<double>(i), i}});
    ASSERT_LE(cache.size(), 16u);
  }
  EXPECT_EQ(cache.stats().insertions, 400u);
  EXPECT_EQ(cache.stats().evictions, 384u);
  std::vector<ScoredDoc> out;
  for (std::uint32_t i = 384; i < 400; ++i) {
    ASSERT_TRUE(cache.lookup({i + 2, i, i + 1}, &out)) << i;  // canonical hit
    EXPECT_EQ(out[0].doc, i);
  }
  for (std::uint32_t i = 0; i < 384; ++i) {
    ASSERT_FALSE(cache.lookup({i, i + 1, i + 2}, nullptr)) << i;
  }
}

class SearchServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::CorpusConfig cfg;
    cfg.num_components = 3;
    cfg.docs_per_component = 120;
    cfg.vocab_size = 500;
    cfg.num_topics = 8;
    cfg.topic_vocab = 40;
    cfg.seed = 23;
    workload::CorpusGen gen(cfg);
    auto wl = gen.generate(25);
    queries_ = std::move(wl.queries);
    std::vector<SearchComponent> comps;
    std::uint64_t base = 0;
    for (auto& shard : wl.shards) {
      const auto docs = shard.rows();
      comps.emplace_back(std::move(shard), base, test_build_config());
      base += docs;
    }
    service_ = std::make_unique<SearchService>(std::move(comps), 10);
  }

  std::vector<SearchRequest> queries_;
  std::unique_ptr<SearchService> service_;
};

TEST_F(SearchServiceTest, ExactTopkIsGloballyConsistent) {
  const auto top = service_->exact_topk(queries_[0]);
  EXPECT_LE(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_TRUE(better(top[i - 1], top[i]) ||
                (top[i - 1].score == top[i].score));
  }
}

TEST_F(SearchServiceTest, ComponentDecompositionCoversExact) {
  // Union of per-group scored docs == component's full match set.
  const auto& comp = service_->component(0);
  const auto work = comp.analyze(queries_[0]);
  std::size_t by_group = 0;
  for (const auto& g : work.scored_by_group) by_group += g.size();
  std::vector<ScoredDoc> all;
  comp.index().score_query(queries_[0].terms, comp.doc_id_base(), all);
  EXPECT_EQ(by_group, all.size());
}

TEST_F(SearchServiceTest, AllSetsEqualsExact) {
  std::vector<ComponentOutcome> outcomes(service_->num_components());
  for (auto& o : outcomes) o.sets = 1000000;
  for (std::size_t q = 0; q < 5; ++q) {
    const auto exact = service_->exact_topk(queries_[q]);
    const auto approx = service_->retrieve(
        queries_[q], core::Technique::kAccuracyTrader, outcomes);
    EXPECT_DOUBLE_EQ(topk_overlap(approx, exact), 1.0) << "query " << q;
  }
}

TEST_F(SearchServiceTest, PartialAllIncludedEqualsExact) {
  std::vector<ComponentOutcome> outcomes(service_->num_components());
  const auto exact = service_->exact_topk(queries_[1]);
  const auto got = service_->retrieve(
      queries_[1], core::Technique::kPartialExecution, outcomes);
  EXPECT_DOUBLE_EQ(topk_overlap(got, exact), 1.0);
}

TEST_F(SearchServiceTest, PartialNoneIncludedReturnsNothing) {
  std::vector<ComponentOutcome> outcomes(service_->num_components());
  for (auto& o : outcomes) o.included = false;
  const auto got = service_->retrieve(
      queries_[1], core::Technique::kPartialExecution, outcomes);
  EXPECT_TRUE(got.empty());
}

TEST_F(SearchServiceTest, StageOneFallbackPadsToK) {
  // Zero sets processed anywhere: the initial synopsis-only result should
  // still return up to k candidate pages.
  std::vector<ComponentOutcome> outcomes(service_->num_components());
  for (auto& o : outcomes) o.sets = 0;
  const auto got = service_->retrieve(
      queries_[0], core::Technique::kAccuracyTrader, outcomes);
  EXPECT_GT(got.size(), 0u);
  EXPECT_LE(got.size(), 10u);
}

TEST_F(SearchServiceTest, AccuracyImprovesWithSets) {
  auto acc_with_sets = [&](std::uint32_t sets) {
    ComponentOutcome o;
    o.sets = sets;
    const auto res = service_->evaluate_uniform(
        queries_, core::Technique::kAccuracyTrader, o);
    return res.accuracy;
  };
  const double a0 = acc_with_sets(0);
  const double a2 = acc_with_sets(2);
  const double a_all = acc_with_sets(1000000);
  EXPECT_DOUBLE_EQ(a_all, 1.0);
  EXPECT_LE(a0, a2 + 1e-9);
  EXPECT_LE(a2, a_all + 1e-9);
}

TEST_F(SearchServiceTest, TopRankedGroupsCarryMostAccuracy) {
  // The paper's central claim (Fig. 4b): processing only the top-ranked
  // 40% of groups should already find most of the actual top-10.
  std::size_t max_groups = 0;
  for (std::size_t c = 0; c < service_->num_components(); ++c)
    max_groups = std::max(max_groups, service_->component(c).num_groups());
  ComponentOutcome o;
  o.sets = static_cast<std::uint32_t>(max_groups * 2 / 5 + 1);
  const auto res = service_->evaluate_uniform(
      queries_, core::Technique::kAccuracyTrader, o);
  EXPECT_GT(res.accuracy, 0.75);
}

TEST_F(SearchServiceTest, EvaluateExactIsPerfect) {
  const auto res = service_->evaluate_uniform(
      queries_, core::Technique::kBasic, {});
  EXPECT_DOUBLE_EQ(res.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(res.loss_pct, 0.0);
}

TEST_F(SearchServiceTest, QueryCacheServesRepeats) {
  service_->enable_query_cache(64);
  const auto first = service_->exact_topk(queries_[0]);
  const auto second = service_->exact_topk(queries_[0]);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].doc, second[i].doc);
    EXPECT_DOUBLE_EQ(first[i].score, second[i].score);
  }
  ASSERT_NE(service_->query_cache(), nullptr);
  EXPECT_EQ(service_->query_cache()->stats().hits, 1u);
}

TEST_F(SearchServiceTest, UpdateInvalidatesQueryCache) {
  service_->enable_query_cache(64);
  (void)service_->exact_topk(queries_[0]);
  workload::CorpusConfig cfg;
  cfg.vocab_size = 500;
  cfg.num_topics = 8;
  cfg.topic_vocab = 40;
  workload::CorpusGen gen(cfg);
  common::Rng rng(8);
  synopsis::UpdateBatch batch;
  batch.added.push_back(gen.sample_doc(rng));
  service_->update_component(0, batch);
  EXPECT_EQ(service_->query_cache()->size(), 0u);
  // The post-update answer is consistent with a cold computation.
  const auto a = service_->exact_topk(queries_[0]);
  const auto b = service_->exact_topk(queries_[0]);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].doc, b[i].doc);
}

TEST_F(SearchServiceTest, ComponentSaveLoadRoundTrip) {
  const auto& comp = service_->component(1);
  std::stringstream buf;
  comp.save(buf);
  SearchComponent loaded = SearchComponent::load(buf);
  EXPECT_EQ(loaded.num_docs(), comp.num_docs());
  EXPECT_EQ(loaded.num_groups(), comp.num_groups());
  EXPECT_EQ(loaded.doc_id_base(), comp.doc_id_base());

  // The loaded component uses its *local* idf until a service reinstalls
  // the corpus-global table, so round-trip determinism is asserted on a
  // second save/load rather than against the in-service component.
  const auto terms = queries_[0].terms;
  const auto a = loaded.exact_topk(SearchRequest{terms}, 5);
  std::stringstream buf2;
  loaded.save(buf2);
  SearchComponent loaded2 = SearchComponent::load(buf2);
  const auto b = loaded2.exact_topk(SearchRequest{terms}, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(SearchComponent, SaveLoadScoresBitIdentical) {
  // A standalone component scores with its local idf on both sides of the
  // round trip, so every loaded top-k score must match bit for bit — this
  // pins the v2 compressed on-disk format to the exact decoded tf values.
  workload::CorpusConfig cfg;
  cfg.num_components = 1;
  cfg.docs_per_component = 80;
  cfg.vocab_size = 300;
  cfg.num_topics = 5;
  cfg.seed = 77;
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(15);
  SearchComponent comp(std::move(wl.shards[0]), 42, test_build_config());

  std::stringstream buf;
  comp.save(buf);
  SearchComponent loaded = SearchComponent::load(buf);
  ASSERT_EQ(loaded.num_docs(), comp.num_docs());
  for (const auto& q : wl.queries) {
    const auto a = comp.exact_topk(q, 10);
    const auto b = loaded.exact_topk(q, 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].doc, b[i].doc);
      EXPECT_EQ(a[i].score, b[i].score);  // bitwise
    }
  }
  const auto sa = comp.index_size();
  const auto sb = loaded.index_size();
  EXPECT_EQ(sa.postings, sb.postings);
  EXPECT_EQ(sa.compressed_bytes, sb.compressed_bytes);
}

TEST(SearchComponentBm25, EndToEndWithBm25Scorer) {
  workload::CorpusConfig cfg;
  cfg.num_components = 1;
  cfg.docs_per_component = 100;
  cfg.vocab_size = 400;
  cfg.num_topics = 6;
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(10);
  ScorerParams scorer;
  scorer.scorer = Scorer::kBm25;
  SearchComponent comp(std::move(wl.shards[0]), 0, test_build_config(),
                       scorer);
  for (const auto& q : wl.queries) {
    const auto top = comp.exact_topk(q, 10);
    for (std::size_t i = 1; i < top.size(); ++i) {
      EXPECT_TRUE(better(top[i - 1], top[i]) ||
                  top[i - 1].score == top[i].score);
    }
    // Group correlations must use the same scorer (positive where matches
    // exist).
    const auto work = comp.analyze(q);
    double max_corr = 0.0;
    for (double c : work.correlations) max_corr = std::max(max_corr, c);
    if (!top.empty()) {
      EXPECT_GT(max_corr, 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Byte-budget bound (the entry-count bound alone does not cap memory when
// result sizes vary per query)
// ---------------------------------------------------------------------------

TEST(QueryCacheTest, ByteBudgetEvictsLruAndTracksBytes) {
  // Room for exactly two of these entries; the third insert must evict the
  // least recently used even though the entry-count bound (100) is far off.
  const std::size_t per_entry = QueryCache::entry_footprint(3, 2);
  QueryCache cache(100, 2 * per_entry);
  cache.insert({1, 2, 3}, {{1.0, 1}, {0.5, 2}});
  cache.insert({4, 5, 6}, {{1.0, 3}, {0.5, 4}});
  EXPECT_EQ(cache.stats().bytes, 2 * per_entry);
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.insert({7, 8, 9}, {{1.0, 5}, {0.5, 6}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes, 2 * per_entry);
  EXPECT_FALSE(cache.lookup({1, 2, 3}, nullptr));   // LRU victim
  EXPECT_TRUE(cache.lookup({4, 5, 6}, nullptr));
  EXPECT_TRUE(cache.lookup({7, 8, 9}, nullptr));
}

TEST(QueryCacheTest, ByteBudgetEvictsSeveralForOneLargeEntry) {
  const std::size_t small = QueryCache::entry_footprint(1, 1);
  QueryCache cache(100, 4 * small);
  for (std::uint32_t i = 0; i < 4; ++i) cache.insert({i}, {{1.0, i}});
  ASSERT_EQ(cache.size(), 4u);
  // One entry worth ~3 small ones evicts as many LRU entries as needed.
  std::vector<ScoredDoc> big;
  const std::size_t big_docs =
      (3 * small - QueryCache::entry_footprint(1, 0)) / sizeof(ScoredDoc);
  for (std::size_t d = 0; d < big_docs; ++d)
    big.push_back({1.0, 100 + static_cast<std::uint64_t>(d)});
  cache.insert({99}, big);
  EXPECT_LE(cache.stats().bytes, 4 * small);
  EXPECT_TRUE(cache.lookup({99}, nullptr));
  EXPECT_FALSE(cache.lookup({0}, nullptr));  // oldest went first
}

TEST(QueryCacheTest, OversizedEntryIsRejectedNotCached) {
  QueryCache cache(100, 256);
  std::vector<ScoredDoc> huge(64, ScoredDoc{1.0, 1});  // > 256-byte budget
  cache.insert({1}, huge);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().oversized_rejects, 1u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  // Normal entries still go through.
  cache.insert({2}, {{1.0, 2}});
  EXPECT_TRUE(cache.lookup({2}, nullptr));
}

TEST(QueryCacheTest, RefreshLargerResultRestoresByteBound) {
  const std::size_t small = QueryCache::entry_footprint(1, 1);
  const std::size_t large = QueryCache::entry_footprint(1, 8);
  QueryCache cache(100, 2 * small + large);
  cache.insert({1}, {{1.0, 1}});
  cache.insert({2}, {{1.0, 2}});
  cache.insert({3}, {{1.0, 3}});
  // Refresh key 3 with a larger result: bytes stay within the bound and
  // the refreshed entry survives (it is the most recent).
  cache.insert({3}, std::vector<ScoredDoc>(8, ScoredDoc{2.0, 30}));
  EXPECT_LE(cache.stats().bytes, 2 * small + large);
  std::vector<ScoredDoc> out;
  ASSERT_TRUE(cache.lookup({3}, &out));
  EXPECT_EQ(out.size(), 8u);
}

TEST(QueryCacheTest, ResultMetaStoredAndReturned) {
  QueryCache cache(4);
  cache.insert({1, 2}, {{1.0, 7}}, ResultMeta{12.5, 3});
  std::vector<ScoredDoc> out;
  ResultMeta meta;
  ASSERT_TRUE(cache.lookup({2, 1}, &out, &meta));
  EXPECT_DOUBLE_EQ(meta.loss_pct, 12.5);
  EXPECT_EQ(meta.epoch, 3u);
  // Default-inserted entries carry the zero annotation.
  cache.insert({5}, {{1.0, 8}});
  ASSERT_TRUE(cache.lookup({5}, &out, &meta));
  EXPECT_DOUBLE_EQ(meta.loss_pct, 0.0);
  EXPECT_EQ(meta.epoch, 0u);
}

// ---------------------------------------------------------------------------
// Fault-tolerant and synopsis-only service paths (the serving ladder's
// rungs, tested against the service directly)
// ---------------------------------------------------------------------------

TEST_F(SearchServiceTest, PartialTopkSkipsDeadComponentAndReports) {
  common::failpoint::clear_all();
  std::size_t ok = 0;
  const auto all = service_->exact_topk_partial(queries_[2], &ok);
  EXPECT_EQ(ok, service_->num_components());
  const auto exact = service_->exact_topk(queries_[2]);
  ASSERT_EQ(all.size(), exact.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].doc, exact[i].doc);

  common::failpoint::set("server.scan.c1", "error");
  const auto partial = service_->exact_topk_partial(queries_[2], &ok);
  EXPECT_EQ(ok, service_->num_components() - 1);
  // No doc of the dead component may appear.
  const auto base = service_->component(1).doc_id_base();
  const auto end = base + service_->component(1).num_docs();
  for (const auto& d : partial) {
    EXPECT_TRUE(d.doc < base || d.doc >= end);
  }
  common::failpoint::clear_all();
  const auto healed = service_->exact_topk_partial(queries_[2], &ok);
  EXPECT_EQ(ok, service_->num_components());
  ASSERT_EQ(healed.size(), exact.size());
  for (std::size_t i = 0; i < healed.size(); ++i)
    EXPECT_EQ(healed[i].doc, exact[i].doc);
}

TEST_F(SearchServiceTest, SynopsisTopkApproximatesExact) {
  double total_overlap = 0.0;
  for (std::size_t q = 0; q < 10; ++q) {
    const auto syn = service_->synopsis_topk(queries_[q]);
    EXPECT_LE(syn.size(), 10u);
    const auto exact = service_->exact_topk(queries_[q]);
    total_overlap += topk_overlap(syn, exact);
  }
  // Stage-1-only answers are lossy but far better than random (10 docs out
  // of 360, so random overlap is ~3%). The tiny fixture keeps the bar low.
  EXPECT_GE(total_overlap / 10.0, 0.15);
}

TEST_F(SearchServiceTest, ReloadComponentStrongGuarantee) {
  const auto before = service_->exact_topk(queries_[3]);
  std::stringstream buf;
  service_->component(1).save(buf);
  const std::string bytes = buf.str();

  // Corrupt stream: throws, and every query result is bit-identical to
  // the pre-reload state — no partially-applied component.
  std::istringstream bad(bytes.substr(0, bytes.size() * 2 / 3));
  EXPECT_THROW(service_->reload_component(1, bad), common::ArtifactError);
  const auto after_fail = service_->exact_topk(queries_[3]);
  ASSERT_EQ(after_fail.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after_fail[i].doc, before[i].doc);
    EXPECT_EQ(after_fail[i].score, before[i].score);  // bitwise
  }

  // Valid stream: the reload succeeds and (being a snapshot of the same
  // component) leaves results identical.
  std::istringstream good(bytes);
  service_->reload_component(1, good);
  const auto after_ok = service_->exact_topk(queries_[3]);
  ASSERT_EQ(after_ok.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(after_ok[i].doc, before[i].doc);
}

TEST_F(SearchServiceTest, ReloadOutOfRangeThrows) {
  std::istringstream is("whatever");
  EXPECT_THROW(service_->reload_component(99, is), std::invalid_argument);
}

TEST_F(SearchServiceTest, ComponentUpdateKeepsSearchWorking) {
  workload::CorpusConfig cfg;
  cfg.vocab_size = 500;
  cfg.num_topics = 8;
  cfg.topic_vocab = 40;
  workload::CorpusGen gen(cfg);
  common::Rng rng(3);
  synopsis::UpdateBatch batch;
  for (int i = 0; i < 4; ++i) batch.added.push_back(gen.sample_doc(rng));
  auto& comp = service_->component(0);
  const auto before = comp.num_docs();
  comp.update(batch);
  EXPECT_EQ(comp.num_docs(), before + 4);
  const auto r = comp.exact_topk(queries_[0], 10);
  EXPECT_LE(r.size(), 10u);
}

}  // namespace
}  // namespace at::search
