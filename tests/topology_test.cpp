// Topology-aware sharded execution layer tests: AT_TOPOLOGY parsing and
// discovery, the NodeArena, ShardedExecutor dispatch (home groups, nested
// fan-out, exception propagation), node-partitioned SVD parity, sharded
// service fan-out parity, and the deterministic concurrency stress suite
// that hammers ShardedExecutor + ScoreAccumulator epochs (including the
// epoch-stamp wrap path) under simulated 1/2/4-node layouts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/sharded_executor.h"
#include "common/thread_pool.h"
#include "common/topology.h"
#include "linalg/svd.h"
#include "services/recommender/service.h"
#include "services/search/service.h"
#include "synopsis/builder.h"
#include "workload/corpus.h"
#include "workload/ratings.h"

namespace at {
namespace {

using common::NodeArena;
using common::ShardedExecutor;
using common::Topology;

// ---------------------------------------------------------------------------
// Topology parsing / discovery
// ---------------------------------------------------------------------------

TEST(Cpulist, ParsesIdsRangesAndDuplicates) {
  std::vector<int> cpus;
  ASSERT_TRUE(common::parse_cpulist("0-3,8,10-11", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  ASSERT_TRUE(common::parse_cpulist("5", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{5}));
  ASSERT_TRUE(common::parse_cpulist("3,1,3,2", &cpus));
  EXPECT_EQ(cpus, (std::vector<int>{1, 2, 3}));  // sorted, deduped
}

TEST(Cpulist, RejectsMalformedSpecs) {
  std::vector<int> cpus;
  EXPECT_FALSE(common::parse_cpulist("", &cpus));
  EXPECT_FALSE(common::parse_cpulist("a", &cpus));
  EXPECT_FALSE(common::parse_cpulist("1-", &cpus));
  EXPECT_FALSE(common::parse_cpulist("3-1", &cpus));
  EXPECT_FALSE(common::parse_cpulist("1,,2", &cpus));
  EXPECT_FALSE(common::parse_cpulist("1,2,", &cpus));
  EXPECT_FALSE(common::parse_cpulist("1;2", &cpus));
}

TEST(TopologyParse, SimulatedNodeCounts) {
  const std::vector<int> cpus{0, 1, 2, 3};
  Topology topo;
  ASSERT_TRUE(common::parse_topology("2", cpus, &topo));
  EXPECT_TRUE(topo.simulated);
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.node_cpus[0], (std::vector<int>{0, 2}));  // round-robin deal
  EXPECT_EQ(topo.node_cpus[1], (std::vector<int>{1, 3}));
  EXPECT_EQ(topo.total_cpus(), 4u);
}

TEST(TopologyParse, MoreNodesThanCpusReusesCpus) {
  Topology topo;
  ASSERT_TRUE(common::parse_topology("4", {7}, &topo));
  ASSERT_EQ(topo.num_nodes(), 4u);
  for (const auto& node : topo.node_cpus) {
    EXPECT_EQ(node, std::vector<int>{7});  // never an empty node
  }
}

TEST(TopologyParse, FlatAndAuto) {
  const std::vector<int> cpus{0, 1, 2};
  Topology topo;
  ASSERT_TRUE(common::parse_topology("flat", cpus, &topo));
  ASSERT_EQ(topo.num_nodes(), 1u);
  EXPECT_EQ(topo.node_cpus[0], cpus);
  ASSERT_TRUE(common::parse_topology("auto", cpus, &topo));
  EXPECT_FALSE(topo.simulated);
  EXPECT_GE(topo.num_nodes(), 1u);
}

TEST(TopologyParse, ExplicitNodeLists) {
  Topology topo;
  ASSERT_TRUE(common::parse_topology("0-1;2-3;8", {0}, &topo));
  ASSERT_EQ(topo.num_nodes(), 3u);
  EXPECT_EQ(topo.node_cpus[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.node_cpus[1], (std::vector<int>{2, 3}));
  EXPECT_EQ(topo.node_cpus[2], (std::vector<int>{8}));
}

TEST(TopologyParse, RejectsBadSpecs) {
  Topology topo;
  EXPECT_FALSE(common::parse_topology(nullptr, {0}, &topo));
  EXPECT_FALSE(common::parse_topology("", {0}, &topo));
  EXPECT_FALSE(common::parse_topology("0", {0}, &topo));
  EXPECT_FALSE(common::parse_topology("numa", {0}, &topo));
  EXPECT_FALSE(common::parse_topology("0-1;;2", {0}, &topo));
  EXPECT_FALSE(common::parse_topology("0-1;", {0}, &topo));
}

TEST(TopologyDiscover, PhysicalTopologyIsSane) {
  const Topology topo = common::physical_topology();
  ASSERT_GE(topo.num_nodes(), 1u);
  std::set<int> seen;
  for (const auto& node : topo.node_cpus) {
    ASSERT_FALSE(node.empty());
    EXPECT_TRUE(std::is_sorted(node.begin(), node.end()));
    for (int c : node) EXPECT_TRUE(seen.insert(c).second)
        << "cpu " << c << " appears in two physical nodes";
  }
  // Every schedulable CPU that sysfs attributes to a node must appear.
  EXPECT_GE(topo.total_cpus(), 1u);
  EXPECT_LE(topo.total_cpus(), common::schedulable_cpus().size());
}

TEST(TopologyDiscover, ActiveTopologyHonorsEnvOverride) {
  const Topology& active = common::active_topology();
  ASSERT_GE(active.num_nodes(), 1u);
  if (const char* spec = std::getenv("AT_TOPOLOGY")) {
    Topology expect;
    if (common::parse_topology(spec, common::schedulable_cpus(), &expect)) {
      EXPECT_EQ(active.num_nodes(), expect.num_nodes());
      EXPECT_EQ(active.node_cpus, expect.node_cpus);
    }
  }
  EXPECT_FALSE(active.describe().empty());
}

TEST(TopologyDescribe, CollapsesRanges) {
  Topology topo;
  topo.node_cpus = {{0, 1, 2, 5}, {7}};
  topo.simulated = true;
  EXPECT_EQ(topo.describe(), "2 nodes (simulated): [0-2,5] [7]");
}

// ---------------------------------------------------------------------------
// NodeArena
// ---------------------------------------------------------------------------

TEST(NodeArenaTest, AlignedDistinctAllocations) {
  NodeArena arena(1 << 12);
  double* a = arena.allocate_array<double>(100);
  double* b = arena.allocate_array<double>(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  // Disjoint storage.
  for (int i = 0; i < 100; ++i) a[i] = 1.0;
  for (int i = 0; i < 100; ++i) b[i] = 2.0;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 1.0);
  EXPECT_GE(arena.bytes_used(), 200 * sizeof(double));
}

TEST(NodeArenaTest, ResetRecyclesBlocks) {
  NodeArena arena(1 << 12);
  (void)arena.allocate(3000);
  (void)arena.allocate(3000);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  (void)arena.allocate(3000);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // no new block needed
}

TEST(NodeArenaTest, AllocationsStayAlignedAfterReset) {
  NodeArena arena(1 << 12);
  (void)arena.allocate(100);
  arena.reset();
  for (int i = 0; i < 8; ++i) {
    void* p = arena.allocate(24);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << "alloc " << i;
  }
}

TEST(NodeArenaTest, MarkReleaseRollsBackScratch) {
  NodeArena arena(1 << 12);
  (void)arena.allocate(1000);
  const std::size_t before = arena.bytes_used();
  const auto cp = arena.mark();
  (void)arena.allocate(3000);
  (void)arena.allocate(3000);  // forces a second block
  const std::size_t reserved = arena.bytes_reserved();
  arena.release(cp);
  EXPECT_EQ(arena.bytes_used(), before);       // scratch rolled back
  EXPECT_EQ(arena.bytes_reserved(), reserved); // capacity retained
  // Released capacity is reusable without growing.
  (void)arena.allocate(3000);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(NodeArenaTest, OversizedAllocationGetsOwnBlock) {
  NodeArena arena(64);
  void* p = arena.allocate(10000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 10000);  // must be fully writable
}

TEST(NodeArenaTest, ConcurrentAllocationsAreDisjoint) {
  NodeArena arena(1 << 14);
  common::ThreadPool pool(4);
  constexpr int kAllocs = 64;
  std::vector<std::uint32_t*> ptrs(kAllocs, nullptr);
  pool.parallel_for(kAllocs, [&](std::size_t i) {
    ptrs[i] = arena.allocate_array<std::uint32_t>(257);
    for (int j = 0; j < 257; ++j) ptrs[i][j] = static_cast<std::uint32_t>(i);
  });
  for (int i = 0; i < kAllocs; ++i) {
    for (int j = 0; j < 257; ++j) ASSERT_EQ(ptrs[i][j], static_cast<std::uint32_t>(i));
  }
}

// ---------------------------------------------------------------------------
// ShardedExecutor dispatch
// ---------------------------------------------------------------------------

TEST(ShardedExecutorTest, BuildsOneGroupPerNode) {
  ShardedExecutor exec(common::simulated_topology(3, {0, 1, 2, 3, 4, 5}));
  ASSERT_EQ(exec.num_groups(), 3u);
  for (std::size_t g = 0; g < 3; ++g) EXPECT_EQ(exec.group_size(g), 2u);
  EXPECT_EQ(exec.total_workers(), 6u);
  EXPECT_EQ(exec.home_group(0), 0u);
  EXPECT_EQ(exec.home_group(4), 1u);
}

TEST(ShardedExecutorTest, RejectsEmptyTopology) {
  Topology empty;
  EXPECT_THROW(ShardedExecutor{empty}, std::invalid_argument);
}

TEST(ShardedExecutorTest, ShardsRunOnTheirHomeGroup) {
  for (std::size_t nodes : {1u, 2u, 4u}) {
    ShardedExecutor exec(common::simulated_topology(nodes));
    constexpr std::size_t kShards = 23;
    std::vector<std::size_t> ran_on(kShards, ShardedExecutor::kNoGroup);
    std::vector<std::atomic<int>> runs(kShards);
    exec.for_each_shard(kShards, [&](std::size_t s) {
      ran_on[s] = ShardedExecutor::current_group();
      runs[s].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(runs[s].load(), 1) << "shard " << s;
      EXPECT_EQ(ran_on[s], exec.home_group(s)) << "shard " << s;
    }
  }
  // Off-executor threads carry no group label.
  EXPECT_EQ(ShardedExecutor::current_group(), ShardedExecutor::kNoGroup);
}

TEST(ShardedExecutorTest, ForEachGroupRunsOncePerGroup) {
  ShardedExecutor exec(common::simulated_topology(4));
  std::vector<std::atomic<int>> runs(4);
  exec.for_each_group([&](std::size_t g) {
    EXPECT_EQ(ShardedExecutor::current_group(), g);
    runs[g].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ShardedExecutorTest, PropagatesShardExceptions) {
  ShardedExecutor exec(common::simulated_topology(2));
  std::atomic<int> completed{0};
  try {
    exec.for_each_shard(8, [&](std::size_t s) {
      if (s == 3) throw std::runtime_error("boom");
      completed.fetch_add(1);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(completed.load(), 7);  // siblings all still ran
}

// The regression the help-while-waiting parallel_for exists for: a task
// running ON a one-worker group fans out on that same group. Without
// helping, the worker would block forever on work queued behind itself.
TEST(ThreadPoolNesting, NestedParallelForOnOneWorkerPoolCompletes) {
  common::ThreadPool pool(1);
  std::atomic<int> inner{0};
  pool.submit([&] {
        pool.parallel_for(5, [&](std::size_t) { inner.fetch_add(1); });
      })
      .get();
  EXPECT_EQ(inner.load(), 5);
}

TEST(ThreadPoolNesting, DeepNestingAcrossGroupsCompletes) {
  ShardedExecutor exec(common::simulated_topology(2));
  std::atomic<int> leaf{0};
  exec.for_each_group([&](std::size_t g) {
    exec.group(g).parallel_for(4, [&](std::size_t) {
      exec.group(g).parallel_for(3, [&](std::size_t) { leaf.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaf.load(), 2 * 4 * 3);
}

TEST(ThreadPoolPinned, PinnedConstructorRunsTasks) {
  // Pinning itself is best effort; what must hold is one worker per entry
  // and normal task execution.
  common::ThreadPool pool(std::vector<int>{0, 0, 0});
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> n{0};
  pool.parallel_for(100, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100);
}

// ---------------------------------------------------------------------------
// Node-partitioned SVD
// ---------------------------------------------------------------------------

synopsis::SparseRows random_rows(std::uint64_t seed, std::size_t rows,
                                 std::size_t cols, double density) {
  common::Rng rng(seed);
  synopsis::SparseRows out(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    synopsis::SparseVector v;
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (rng.uniform() < density) v.emplace_back(c, 1.0 + rng.uniform() * 4.0);
    }
    if (v.empty()) v.emplace_back(static_cast<std::uint32_t>(r % cols), 1.0);
    out.add_row(std::move(v));
  }
  return out;
}

void expect_same_model(const linalg::SvdModel& a, const linalg::SvdModel& b) {
  ASSERT_EQ(a.row_factors.rows(), b.row_factors.rows());
  ASSERT_EQ(a.col_factors.rows(), b.col_factors.rows());
  EXPECT_EQ(a.row_factors.data(), b.row_factors.data());
  EXPECT_EQ(a.col_factors.data(), b.col_factors.data());
  EXPECT_EQ(a.row_bias, b.row_bias);
  EXPECT_EQ(a.col_bias, b.col_bias);
  EXPECT_EQ(a.global_mean, b.global_mean);
}

TEST(ShardedSvd, DeterministicModeBitIdenticalUnderAnyLayout) {
  auto rows = random_rows(11, 70, 32, 0.2);
  const auto ds = rows.to_dataset();
  for (bool biases : {false, true}) {
    linalg::SvdConfig cfg;
    cfg.rank = 3;
    cfg.epochs_per_dim = 20;
    cfg.use_biases = biases;
    cfg.deterministic = true;
    const auto reference = linalg::incremental_svd(ds, cfg, nullptr);
    for (std::size_t nodes : {1u, 2u, 4u}) {
      ShardedExecutor exec(common::simulated_topology(nodes));
      const auto sharded = linalg::incremental_svd_sharded(ds, cfg, exec);
      expect_same_model(reference, sharded);
      EXPECT_EQ(reference.train_rmse, sharded.train_rmse);
    }
  }
}

TEST(ShardedSvd, NodePartitionedHogwildConverges) {
  auto rows = random_rows(12, 160, 48, 0.18);
  const auto ds = rows.to_dataset();
  linalg::SvdConfig cfg;
  cfg.rank = 3;
  cfg.epochs_per_dim = 40;
  const auto sequential = linalg::incremental_svd(ds, cfg);
  cfg.deterministic = false;
  for (bool biases : {false, true}) {
    cfg.use_biases = biases;
    const auto seq = biases ? linalg::incremental_svd(ds, cfg, nullptr)
                            : sequential;
    for (std::size_t nodes : {2u, 4u}) {
      ShardedExecutor exec(
          common::simulated_topology(nodes, {0, 0, 1, 1}));  // 2 workers/node
      const auto sharded = linalg::incremental_svd_sharded(ds, cfg, exec);
      // Epoch-boundary delta merges perturb the trajectory, not the
      // quality (same contract as plain hogwild).
      EXPECT_NEAR(sharded.train_rmse, seq.train_rmse,
                  0.25 * seq.train_rmse + 0.05)
          << nodes << " nodes, biases=" << biases;
    }
  }
}

TEST(ShardedSvd, SingleGroupMatchesPlainHogwildContract) {
  auto rows = random_rows(13, 90, 30, 0.2);
  const auto ds = rows.to_dataset();
  linalg::SvdConfig cfg;
  cfg.rank = 2;
  cfg.epochs_per_dim = 30;
  cfg.deterministic = false;
  ShardedExecutor exec(common::simulated_topology(1, {0, 0, 0, 0}));
  const auto sharded = linalg::incremental_svd_sharded(ds, cfg, exec);
  cfg.deterministic = true;
  const auto reference = linalg::incremental_svd(ds, cfg);
  EXPECT_NEAR(sharded.train_rmse, reference.train_rmse,
              0.25 * reference.train_rmse + 0.05);
}

TEST(ShardedSvd, RepeatedTrainingDoesNotGrowArenas) {
  // Long-lived-executor contract: training scratch is checkpointed and
  // released, so repeated rebuilds reuse (never grow) the node arenas.
  auto rows = random_rows(15, 80, 40, 0.2);
  const auto ds = rows.to_dataset();
  linalg::SvdConfig cfg;
  cfg.rank = 2;
  cfg.epochs_per_dim = 10;
  cfg.deterministic = false;
  ShardedExecutor exec(common::simulated_topology(2));
  (void)linalg::incremental_svd_sharded(ds, cfg, exec);
  std::size_t used = 0, reserved = 0;
  for (std::size_t g = 0; g < exec.num_groups(); ++g) {
    used += exec.arena(g).bytes_used();
    reserved += exec.arena(g).bytes_reserved();
  }
  EXPECT_EQ(used, 0u);
  for (int rep = 0; rep < 3; ++rep)
    (void)linalg::incremental_svd_sharded(ds, cfg, exec);
  std::size_t reserved_after = 0;
  for (std::size_t g = 0; g < exec.num_groups(); ++g)
    reserved_after += exec.arena(g).bytes_reserved();
  EXPECT_EQ(reserved_after, reserved);
}

TEST(ShardedSvd, BuilderShardedMatchesDeterministicBuild) {
  auto rows = random_rows(14, 60, 24, 0.25);
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 25;
  cfg.size_ratio = 8.0;
  const auto reference = synopsis::SynopsisBuilder(cfg).build(rows);
  ShardedExecutor exec(common::simulated_topology(2));
  const auto sharded = synopsis::SynopsisBuilder(cfg).build_sharded(rows, exec);
  EXPECT_EQ(reference.svd.row_factors.data(), sharded.svd.row_factors.data());
  EXPECT_EQ(reference.level, sharded.level);
  ASSERT_EQ(reference.index.size(), sharded.index.size());
}

// ---------------------------------------------------------------------------
// Sharded service fan-out parity
// ---------------------------------------------------------------------------

synopsis::BuildConfig service_build_config() {
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 30;
  cfg.size_ratio = 10.0;
  return cfg;
}

void expect_same_docs(const std::vector<search::ScoredDoc>& a,
                      const std::vector<search::ScoredDoc>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc) << "rank " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

TEST(ShardedFanout, SearchTopkBitIdenticalAcrossLayouts) {
  workload::CorpusConfig cfg;
  cfg.num_components = 5;
  cfg.docs_per_component = 80;
  cfg.vocab_size = 400;
  cfg.num_topics = 6;
  cfg.topic_vocab = 40;
  cfg.seed = 31;
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(30);
  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto docs = shard.rows();
    comps.emplace_back(std::move(shard), base, service_build_config());
    base += docs;
  }
  search::SearchService service(std::move(comps), 10);

  // Sequential reference.
  std::vector<std::vector<search::ScoredDoc>> reference;
  for (const auto& q : wl.queries) reference.push_back(service.exact_topk(q));

  const std::vector<core::ComponentOutcome> outcomes(
      service.num_components(), core::ComponentOutcome{true, 2});

  common::ThreadPool pool(4);
  service.set_pool(&pool);
  for (std::size_t i = 0; i < wl.queries.size(); ++i)
    expect_same_docs(service.exact_topk(wl.queries[i]), reference[i]);
  service.set_pool(nullptr);

  for (std::size_t nodes : {1u, 2u, 4u}) {
    ShardedExecutor exec(common::simulated_topology(nodes));
    service.set_executor(&exec);
    for (std::size_t i = 0; i < wl.queries.size(); ++i) {
      expect_same_docs(service.exact_topk(wl.queries[i]), reference[i]);
      // Techniques fan out through the same dispatch; spot-check a few.
      if (i < 5) {
        const auto seq = service.retrieve(
            wl.queries[i], core::Technique::kAccuracyTrader, outcomes);
        service.set_executor(nullptr);
        const auto ref = service.retrieve(
            wl.queries[i], core::Technique::kAccuracyTrader, outcomes);
        service.set_executor(&exec);
        expect_same_docs(seq, ref);
      }
    }
    service.set_executor(nullptr);
  }
}

TEST(ShardedFanout, SearchUpdateOnHomeGroupKeepsServing) {
  workload::CorpusConfig cfg;
  cfg.num_components = 3;
  cfg.docs_per_component = 60;
  cfg.vocab_size = 300;
  cfg.num_topics = 5;
  cfg.topic_vocab = 30;
  cfg.seed = 33;
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(10);
  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto docs = shard.rows();
    comps.emplace_back(std::move(shard), base, service_build_config());
    base += docs;
  }
  search::SearchService service(std::move(comps), 10);
  ShardedExecutor exec(common::simulated_topology(2));
  service.set_executor(&exec);

  common::Rng rng(7);
  synopsis::UpdateBatch batch;
  for (int i = 0; i < 5; ++i) batch.added.push_back(gen.sample_doc(rng));
  const auto before = service.component(1).num_docs();
  const auto report = service.update_component(1, batch);
  EXPECT_EQ(report.points_added, 5u);
  EXPECT_EQ(service.component(1).num_docs(), before + 5);
  for (const auto& q : wl.queries) {
    const auto sharded = service.exact_topk(q);
    service.set_executor(nullptr);
    expect_same_docs(sharded, service.exact_topk(q));
    service.set_executor(&exec);
  }
}

TEST(ShardedFanout, CfUpdateOnHomeGroupKeepsPredicting) {
  workload::RatingConfig cfg;
  cfg.num_components = 3;
  cfg.users_per_component = 50;
  cfg.num_items = 40;
  cfg.num_clusters = 4;
  cfg.seed = 41;
  workload::RatingWorkloadGen gen(cfg);
  auto wl = gen.generate(10, 2);
  std::vector<reco::RecommenderComponent> comps;
  for (auto& subset : wl.subsets)
    comps.emplace_back(std::move(subset), service_build_config());
  reco::CfService service(std::move(comps), cfg.min_rating, cfg.max_rating);
  ShardedExecutor exec(common::simulated_topology(2));
  service.set_executor(&exec);

  common::Rng rng(5);
  synopsis::UpdateBatch batch;
  for (int i = 0; i < 4; ++i) batch.added.push_back(gen.sample_user(rng));
  const auto before = service.component(2).num_users();
  const auto report = service.update_component(2, batch);
  EXPECT_EQ(report.points_added, 4u);
  EXPECT_EQ(service.component(2).num_users(), before + 4);
  for (const auto& r : wl.requests) {
    const double sharded = service.predict_exact(r);
    service.set_executor(nullptr);
    EXPECT_EQ(sharded, service.predict_exact(r));
    service.set_executor(&exec);
  }
}

TEST(ShardedFanout, CfPredictionsBitIdenticalAcrossLayouts) {
  workload::RatingConfig cfg;
  cfg.num_components = 5;
  cfg.users_per_component = 60;
  cfg.num_items = 50;
  cfg.num_clusters = 5;
  cfg.seed = 37;
  workload::RatingWorkloadGen gen(cfg);
  auto wl = gen.generate(30, 2);
  std::vector<reco::RecommenderComponent> comps;
  for (auto& subset : wl.subsets)
    comps.emplace_back(std::move(subset), service_build_config());
  reco::CfService service(std::move(comps), cfg.min_rating, cfg.max_rating);

  std::vector<double> reference;
  for (const auto& r : wl.requests) reference.push_back(service.predict_exact(r));

  const std::vector<core::ComponentOutcome> outcomes(
      service.num_components(), core::ComponentOutcome{true, 1});
  std::vector<double> reference_at;
  for (const auto& r : wl.requests) {
    reference_at.push_back(
        service.predict(r, core::Technique::kAccuracyTrader, outcomes));
  }

  for (std::size_t nodes : {1u, 2u, 4u}) {
    ShardedExecutor exec(common::simulated_topology(nodes));
    service.set_executor(&exec);
    for (std::size_t i = 0; i < wl.requests.size(); ++i) {
      EXPECT_EQ(service.predict_exact(wl.requests[i]), reference[i]);
      EXPECT_EQ(service.predict(wl.requests[i],
                                core::Technique::kAccuracyTrader, outcomes),
                reference_at[i]);
    }
    service.set_executor(nullptr);
  }
}

// ---------------------------------------------------------------------------
// Deterministic concurrency stress: ShardedExecutor + ScoreAccumulator
// ---------------------------------------------------------------------------

/// One synthetic query's accumulator workload, derived deterministically
/// from (seed, qid): a fresh-epoch bulk batch (unique docs — the postings
/// first-term contract) followed by 1..3 stamped terms whose docs may
/// repeat.
struct StressQuery {
  std::size_t num_docs;
  std::vector<std::uint32_t> fresh_docs;
  std::vector<double> fresh_scores;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> terms;
};

StressQuery make_stress_query(std::uint64_t seed, std::uint64_t qid) {
  common::Rng rng(seed ^ (qid * 0x9e3779b97f4a7c15ULL));
  StressQuery q;
  q.num_docs = 64 + rng.uniform_index(192);
  // Unique fresh docs: partial Fisher-Yates over [0, num_docs).
  std::vector<std::uint32_t> perm(q.num_docs);
  std::iota(perm.begin(), perm.end(), 0u);
  const std::size_t fresh = 1 + rng.uniform_index(q.num_docs / 2);
  for (std::size_t i = 0; i < fresh; ++i) {
    const std::size_t j = i + rng.uniform_index(q.num_docs - i);
    std::swap(perm[i], perm[j]);
    q.fresh_docs.push_back(perm[i]);
    q.fresh_scores.push_back(rng.uniform(0.0, 8.0));
  }
  const std::size_t terms = 1 + rng.uniform_index(3);
  q.terms.resize(terms);
  for (auto& term : q.terms) {
    const std::size_t n = 1 + rng.uniform_index(48);
    for (std::size_t i = 0; i < n; ++i) {
      term.emplace_back(
          static_cast<std::uint32_t>(rng.uniform_index(q.num_docs)),
          rng.uniform(0.0, 4.0));
    }
  }
  return q;
}

/// Runs one query through `acc` and snapshots (touched order, scores).
std::vector<std::pair<std::uint32_t, double>> run_stress_query(
    search::ScoreAccumulator& acc, const StressQuery& q) {
  acc.begin(q.num_docs);
  acc.bulk_add_fresh(q.fresh_docs.data(), q.fresh_scores.data(),
                     q.fresh_docs.size());
  for (const auto& term : q.terms) {
    for (const auto& [doc, score] : term) acc.add(doc, score);
  }
  std::vector<std::pair<std::uint32_t, double>> out;
  out.reserve(acc.touched().size());
  for (auto doc : acc.touched()) out.emplace_back(doc, acc.score(doc));
  return out;
}

TEST(ConcurrencyStress, AccumulatorEpochsBitIdenticalUnderAllLayouts) {
  constexpr std::uint64_t kSeed = 20260729;
  constexpr std::size_t kQueries = 240;
  constexpr std::size_t kRounds = 3;

  // Reference: every query on a fresh accumulator, single-threaded. A
  // query's result must depend on its ops alone, so every reuse pattern
  // below has to reproduce these bits exactly.
  std::vector<StressQuery> queries;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> reference;
  for (std::uint64_t qid = 0; qid < kQueries; ++qid) {
    queries.push_back(make_stress_query(kSeed, qid));
    search::ScoreAccumulator fresh;
    reference.push_back(run_stress_query(fresh, queries.back()));
  }

  for (std::size_t nodes : {1u, 2u, 4u}) {
    ShardedExecutor exec(common::simulated_topology(nodes, {0, 0, 1, 1}));
    const std::size_t shards = exec.total_workers() * 2;
    // Shard-local accumulators persist across rounds (epoch reuse) —
    // exactly the per-shard accumulator ownership of the sharded services.
    std::vector<search::ScoreAccumulator> accs(shards);
    std::atomic<std::size_t> failures{0};
    for (std::size_t round = 0; round < kRounds; ++round) {
      exec.for_each_shard(shards, [&](std::size_t s) {
        search::ScoreAccumulator& acc = accs[s];
        // Arena traffic alongside, to cross-check allocation under load.
        double* scratch =
            exec.arena(exec.home_group(s)).allocate_array<double>(64);
        scratch[s % 64] = static_cast<double>(s);
        for (std::size_t qid = s; qid < kQueries; qid += shards) {
          // Exercise the epoch-stamp wrap path from several distances.
          if (qid % 37 == s % 3) {
            acc.set_epoch_for_test(
                ~std::uint32_t{0} - static_cast<std::uint32_t>(qid % 3));
          }
          const auto got = run_stress_query(acc, queries[qid]);
          if (got != reference[qid]) failures.fetch_add(1);
        }
      });
      exec.for_each_group(
          [&](std::size_t g) { exec.arena(g).reset(); });
    }
    EXPECT_EQ(failures.load(), 0u) << nodes << "-node layout";
  }
}

// Hammer the same executor from several client threads at once (the
// multi-user serving pattern): dispatch remains correct and shard-local
// accumulator state never leaks across shards.
TEST(ConcurrencyStress, ConcurrentClientsShareOneExecutor) {
  constexpr std::uint64_t kSeed = 424242;
  constexpr std::size_t kQueries = 60;
  std::vector<StressQuery> queries;
  std::vector<std::vector<std::pair<std::uint32_t, double>>> reference;
  for (std::uint64_t qid = 0; qid < kQueries; ++qid) {
    queries.push_back(make_stress_query(kSeed, qid));
    search::ScoreAccumulator fresh;
    reference.push_back(run_stress_query(fresh, queries.back()));
  }

  ShardedExecutor exec(common::simulated_topology(2, {0, 0, 0, 0}));
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const std::size_t shards = 4;
      std::vector<search::ScoreAccumulator> accs(shards);
      for (int round = 0; round < 3; ++round) {
        exec.for_each_shard(shards, [&](std::size_t s) {
          for (std::size_t qid = (s + t) % shards; qid < kQueries;
               qid += shards) {
            const auto got = run_stress_query(accs[s], queries[qid]);
            if (got != reference[qid]) failures.fetch_add(1);
          }
        });
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace at
