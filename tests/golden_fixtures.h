// Deterministic fixture recipes shared by the legacy-format golden files
// under tests/data/golden/ and the compat tests that load them.
//
// The golden files were generated ONCE, at the last commit whose writers
// still emitted the pre-artifact-container formats (SparseRows v1/v2/v3
// behind "ATSR", Matrix/SVD/IndexFile/Synopsis/Structure v1 behind
// "ATMX"/"ATSV"/"ATIX"/"ATSY"/"ATSS", component snapshots behind
// "ATSC"/"ATRC"), by serializing exactly the objects these recipes build.
// The recipes are formula-based (no RNG) except for the structure/component
// fixtures, which run the deterministic-mode synopsis build — that path is
// bit-reproducible by contract (tests/perf_equivalence_test.cpp), so a
// fresh build today must equal the bytes decoded from the golden files.
//
// Do NOT change these recipes: they are frozen alongside the files.
#pragma once

#include <algorithm>
#include <cstdint>

#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/index_file.h"
#include "synopsis/sparse_rows.h"

namespace at::testing {

/// 12 x 32 rows mixing integral values (quantizable), fractions and
/// values > 255 (both codec exceptions), so every legacy value path is
/// exercised.
inline synopsis::SparseRows golden_rows() {
  synopsis::SparseRows rows(32);
  for (std::uint32_t r = 0; r < 12; ++r) {
    synopsis::SparseVector v;
    for (std::uint32_t k = 0; k < 6; ++k) {
      const std::uint32_t c = (r * 5 + k * 7) % 32;
      double val = static_cast<double>((r + 2) * (k + 1));
      if (k == 1) val += 0.25;      // fractional -> exception entry
      if (k == 2) val = 300.0 + r;  // > 255 -> exception entry
      v.emplace_back(c, val);
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end(),
                        [](const auto& a, const auto& b) {
                          return a.first == b.first;
                        }),
            v.end());
    rows.add_row(std::move(v));
  }
  return rows;
}

inline linalg::Matrix golden_matrix() {
  linalg::Matrix m(5, 4);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m(r, c) = (static_cast<double>(r) - 2.0) * 1.375 +
                static_cast<double>(c) * 0.0625 - 0.5;
    }
  }
  return m;
}

/// Hand-built model (no training) with biases, so the bias arrays'
/// round-trip is covered too.
inline linalg::SvdModel golden_svd_model() {
  linalg::SvdModel model;
  model.row_factors = linalg::Matrix(6, 3);
  model.col_factors = linalg::Matrix(5, 3);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t d = 0; d < 3; ++d)
      model.row_factors(r, d) =
          0.1 * static_cast<double>(r + 1) - 0.07 * static_cast<double>(d);
  for (std::size_t c = 0; c < 5; ++c)
    for (std::size_t d = 0; d < 3; ++d)
      model.col_factors(c, d) =
          -0.2 + 0.055 * static_cast<double>(c * 3 + d);
  model.global_mean = 3.21875;
  model.row_bias = {0.5, -0.25, 0.125, 0.0, -1.0, 2.5};
  model.col_bias = {-0.5, 0.75, 0.0, 1.5, -0.0625};
  model.train_rmse = 0.8125;
  return model;
}

inline synopsis::IndexFile golden_index_file() {
  return synopsis::IndexFile({{11, 3, {0, 2, 5}},
                              {22, 7, {1, 3, 4}},
                              {35, 1, {6, 7, 8, 9, 10, 11}}});
}

inline synopsis::Synopsis golden_synopsis() {
  synopsis::Synopsis syn;
  synopsis::AggregatedPoint p0;
  p0.node_id = 11;
  p0.member_count = 3;
  p0.features = {{1, 2.5}, {4, 300.0}, {9, 7.0}};
  p0.support = {1, 3, 2};
  synopsis::AggregatedPoint p1;
  p1.node_id = 22;
  p1.member_count = 9;
  p1.features = {{0, 1.0}, {31, 0.125}};
  p1.support = {};
  syn.points.push_back(std::move(p0));
  syn.points.push_back(std::move(p1));
  return syn;
}

inline synopsis::BuildConfig golden_build_config() {
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 15;
  // The rows carry values up to ~311; the default 0.01 rate diverges on
  // them, 0.001 trains to finite factors (the fixtures must exercise a
  // *converged* model).
  cfg.svd.learning_rate = 0.001;
  cfg.svd.seed = 7;
  cfg.size_ratio = 4.0;
  cfg.min_groups = 2;
  return cfg;
}

inline synopsis::SynopsisStructure golden_structure() {
  const synopsis::SparseRows rows = golden_rows();
  return synopsis::SynopsisBuilder(golden_build_config()).build(rows);
}

}  // namespace at::testing
