// Unit tests for the common substrate: RNG, Zipf, statistics, thread pool,
// table writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/zipf.h"

namespace at::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17u);
  }
}

TEST(Rng, UniformIndexCoversSupport) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(15);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit |= (v == -3);
    hi_hit |= (v == 3);
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  StreamingStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  StreamingStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(42), p2(42);
  Rng a = p1.fork(5), b = p2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Zipf, RejectsEmptySupport) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Zipf, RejectsNegativeSkew) {
  EXPECT_THROW(ZipfDistribution(10, -0.5), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(1000, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < 1000; ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, ZeroSkewIsUniform) {
  ZipfDistribution z(50, 0.0);
  for (std::size_t k = 0; k < 50; ++k) EXPECT_NEAR(z.pmf(k), 0.02, 1e-12);
}

TEST(Zipf, RankZeroDominates) {
  ZipfDistribution z(100, 1.0);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(10));
  EXPECT_GT(z.pmf(10), z.pmf(99));
}

TEST(Zipf, EmpiricalHeadFrequencyMatchesPmf) {
  ZipfDistribution z(100, 1.0);
  Rng rng(3);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) head += (z.sample(rng) == 0);
  EXPECT_NEAR(static_cast<double>(head) / n, z.pmf(0), 0.01);
}

TEST(Zipf, SamplesWithinSupport) {
  ZipfDistribution z(7, 2.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 7u);
}

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownValues) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesConcatenation) {
  Rng rng(33);
  StreamingStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(1.0, 3.0);
    (i < 400 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(PercentileTracker, NearestRankSemantics) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(t.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(t.percentile(1), 1.0);
}

TEST(PercentileTracker, P999NeedsTailResolution) {
  PercentileTracker t;
  for (int i = 0; i < 10000; ++i) t.add(1.0);
  t.add(500.0);  // single outlier
  EXPECT_DOUBLE_EQ(t.percentile(99.9), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(100.0), 500.0);
}

TEST(PercentileTracker, UnsortedInsertOrderIrrelevant) {
  PercentileTracker a, b;
  std::vector<double> v(500);
  std::iota(v.begin(), v.end(), 0.0);
  for (double x : v) a.add(x);
  std::reverse(v.begin(), v.end());
  for (double x : v) b.add(x);
  EXPECT_DOUBLE_EQ(a.percentile(90), b.percentile(90));
}

TEST(PercentileTracker, MergeCombinesSamples) {
  PercentileTracker a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.percentile(100), 3.0);
}

TEST(PercentileTracker, InvalidPercentileThrows) {
  PercentileTracker t;
  t.add(1.0);
  EXPECT_THROW(t.percentile(0.0), std::invalid_argument);
  EXPECT_THROW(t.percentile(100.5), std::invalid_argument);
}

TEST(PercentileTracker, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_DOUBLE_EQ(t.percentile(99.9), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.value(), 10.0);
  q.add(20.0);
  q.add(30.0);
  EXPECT_DOUBLE_EQ(q.value(), 20.0);  // nearest-rank median of {10,20,30}
}

TEST(P2Quantile, ConvergesOnUniform) {
  P2Quantile q(0.95);
  Rng rng(77);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform());
  EXPECT_NEAR(q.value(), 0.95, 0.02);
}

TEST(P2Quantile, ConvergesOnExponentialTail) {
  P2Quantile q(0.99);
  Rng rng(78);
  for (int i = 0; i < 200000; ++i) q.add(rng.exponential(1.0));
  EXPECT_NEAR(q.value(), -std::log(0.01), 0.25);
}

TEST(P2Quantile, RejectsInvalidQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { counter++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForFewerIndicesThanWorkers) {
  // n < workers must submit exactly n single-index tasks: every index
  // visited exactly once, no empty-range task, no divide-by-zero in the
  // chunk math.
  ThreadPool pool(8);
  for (std::size_t n : {1u, 2u, 7u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      ASSERT_LT(i, n);
      hits[i]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForIndexCountsAroundWorkerMultiples) {
  // Around the chunking boundaries (workers, workers +/- 1, 2*workers + 1)
  // the ceil-divide must neither drop nor duplicate indices.
  ThreadPool pool(3);
  for (std::size_t n : {2u, 3u, 4u, 7u, 9u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelForSingleWorkerPool) {
  // Degenerate one-worker pool: chunk math must still cover everything
  // (chunks == 1, per == n) for any n including n == 0.
  ThreadPool pool(1);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  std::vector<std::atomic<int>> hits(5);
  pool.parallel_for(5, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(TableWriter, AsciiContainsHeaderAndRows) {
  TableWriter t("demo");
  t.set_columns({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableWriter, CsvFormat) {
  TableWriter t("demo");
  t.set_columns({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TableWriter, RowWidthMismatchThrows) {
  TableWriter t("demo");
  t.set_columns({"x", "y"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableWriter, FmtPrecision) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt_int(42), "42");
}

TEST(Rng, LognormalMedianMatches) {
  Rng rng(23);
  std::vector<double> v;
  for (int i = 0; i < 50000; ++i) v.push_back(rng.lognormal(1.0, 0.8));
  std::sort(v.begin(), v.end());
  EXPECT_NEAR(v[v.size() / 2], std::exp(1.0), 0.08);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(25);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Zipf, SupportOfOne) {
  ZipfDistribution z(1, 1.5);
  Rng rng(27);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(z.pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(z.pmf(5), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(PercentileTracker, ClearResets) {
  PercentileTracker t;
  t.add(5.0);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.percentile(50), 0.0);
  t.add(9.0);
  EXPECT_DOUBLE_EQ(t.percentile(50), 9.0);
}

TEST(P2Quantile, NormalDistributionP99) {
  P2Quantile q(0.99);
  Rng rng(29);
  for (int i = 0; i < 300000; ++i) q.add(rng.normal(0.0, 1.0));
  EXPECT_NEAR(q.value(), 2.326, 0.12);
}

TEST(HistogramRender, ProducesBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.add(0.5);
  h.add(1.5);
  const std::string s = h.render(20);
  EXPECT_NE(s.find("####################"), std::string::npos);
  EXPECT_NE(s.find(" 10"), std::string::npos);
  EXPECT_NE(s.find(" 1\n"), std::string::npos);
}

TEST(Logging, LevelFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold logging must be a no-op (no crash, no output check
  // needed — this exercises the filter path).
  AT_LOG_DEBUG << "dropped";
  AT_LOG_INFO << "dropped";
  set_log_level(before);
}

TEST(TableWriter, PrintIncludesTitle) {
  TableWriter t("my experiment");
  t.set_columns({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("my experiment"), std::string::npos);
  EXPECT_NE(os.str().find("| 1 |"), std::string::npos);
}

TEST(TableWriter, SetColumnsAfterRowsThrows) {
  TableWriter t("x");
  t.set_columns({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.set_columns({"b"}), std::logic_error);
}

// Percentile monotonicity property across sample shapes.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, NonDecreasingInP) {
  Rng rng(GetParam());
  PercentileTracker t;
  for (int i = 0; i < 2000; ++i) {
    t.add(GetParam() % 2 == 0 ? rng.exponential(1.0)
                              : rng.normal(10.0, 4.0));
  }
  double prev = t.percentile(0.1);
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const double v = t.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4));

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch w;
  const double a = w.elapsed_seconds();
  const double b = w.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
}  // namespace at::common
