// Synopsis pipeline tests: sparse rows, index file, builder (steps 1–2),
// aggregation (step 3), incremental updater.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "services/search/postings_codec.h"
#include "synopsis/aggregate.h"
#include "synopsis/builder.h"
#include "synopsis/index_file.h"
#include "synopsis/multiresolution.h"
#include "synopsis/serialize.h"
#include "synopsis/sparse_rows.h"
#include "synopsis/updater.h"

namespace at::synopsis {
namespace {

TEST(SparseVectorOps, NormalizeSortsAndMerges) {
  SparseVector v{{5, 1.0}, {2, 2.0}, {5, 3.0}, {0, 1.0}};
  normalize(v);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].first, 0u);
  EXPECT_EQ(v[1].first, 2u);
  EXPECT_EQ(v[2].first, 5u);
  EXPECT_DOUBLE_EQ(v[2].second, 4.0);
}

TEST(SparseVectorOps, ValueAt) {
  SparseVector v{{1, 2.0}, {7, 3.0}};
  EXPECT_DOUBLE_EQ(value_at(v, 1), 2.0);
  EXPECT_DOUBLE_EQ(value_at(v, 7), 3.0);
  EXPECT_DOUBLE_EQ(value_at(v, 5), 0.0);
  EXPECT_DOUBLE_EQ(value_at({}, 0), 0.0);
}

TEST(SparseVectorOps, DotAndCosine) {
  SparseVector a{{0, 1.0}, {2, 2.0}};
  SparseVector b{{1, 5.0}, {2, 3.0}};
  EXPECT_DOUBLE_EQ(dot(a, b), 6.0);
  EXPECT_DOUBLE_EQ(cosine(a, a), 1.0);
  EXPECT_DOUBLE_EQ(cosine(a, {}), 0.0);
  EXPECT_GT(cosine(a, b), 0.0);
  EXPECT_LT(cosine(a, b), 1.0);
}

TEST(SparseRows, AddAndReplace) {
  SparseRows rows(10);
  const auto id = rows.add_row({{3, 1.0}, {1, 2.0}});
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(rows.row(0)[0].first, 1u);  // normalized order
  rows.replace_row(0, {{9, 4.0}});
  EXPECT_DOUBLE_EQ(value_at(rows.row(0), 9), 4.0);
  EXPECT_THROW(rows.add_row({{10, 1.0}}), std::out_of_range);
  EXPECT_THROW(rows.replace_row(5, {}), std::out_of_range);
}

TEST(SparseRows, DatasetConversion) {
  SparseRows rows(4);
  rows.add_row({{0, 1.0}, {3, 2.0}});
  rows.add_row({{1, 5.0}});
  const auto ds = rows.to_dataset();
  EXPECT_EQ(ds.rows, 2u);
  EXPECT_EQ(ds.cols, 4u);
  EXPECT_EQ(ds.entries.size(), 3u);
  const auto tail = rows.tail_dataset(1);
  EXPECT_EQ(tail.rows, 1u);
  EXPECT_EQ(tail.entries.size(), 1u);
  EXPECT_EQ(tail.entries[0].row, 0u);  // re-indexed
}

TEST(SparseRows, GenerationTicksOnEveryViewInvalidatingMutation) {
  // The view-lifetime contract (SparseRows::row): any mutation may move
  // pool storage, and generation() must tick so holders of raw views can
  // assert they never read across a mutation.
  SparseRows rows(16);
  const auto g0 = rows.generation();
  rows.add_row({{0, 1.0}, {3, 2.0}, {7, 3.0}});
  EXPECT_GT(rows.generation(), g0);
  // A second, larger row keeps the dead ratio under the 25% auto-compact
  // trigger for the shrink below, so each tick source is observed alone.
  rows.add_row({{1, 1.0}, {2, 1.0}, {4, 1.0}, {5, 1.0},
                {6, 1.0}, {8, 1.0}, {9, 1.0}, {10, 1.0}});

  auto g = rows.generation();
  rows.replace_row(0, {{2, 9.0}, {3, 1.0}});  // in-place shrink, 1 dead slot
  EXPECT_GT(rows.generation(), g);
  ASSERT_EQ(rows.dead_entries(), 1u);  // auto-compact must not have run

  g = rows.generation();
  rows.compact();  // dead entries exist -> extents rewritten
  EXPECT_GT(rows.generation(), g);
  EXPECT_EQ(rows.dead_entries(), 0u);

  g = rows.generation();
  rows.compact();  // no dead entries: a no-op leaves views valid
  EXPECT_EQ(rows.generation(), g);
}

TEST(SparseRows, CompactionTriggeredByReplaceTicksGeneration) {
  // Repeated grown replacements cross the 25% dead threshold inside
  // replace_row; the implicit compact must be observable through
  // generation() just like an explicit one.
  SparseRows rows(32);
  common::Rng rng(5);
  for (int r = 0; r < 10; ++r) {
    SparseVector v;
    for (std::uint32_t c = 0; c < 32; ++c)
      if (rng.uniform() < 0.25) v.emplace_back(c, 1.0);
    rows.add_row(std::move(v));
  }
  std::uint64_t last = rows.generation();
  for (int round = 0; round < 30; ++round) {
    SparseVector v;
    for (std::uint32_t c = 0; c < 32; ++c)
      if (rng.uniform() < 0.8) v.emplace_back(c, 2.0);
    rows.replace_row(static_cast<std::uint32_t>(round % 10), std::move(v));
    EXPECT_GT(rows.generation(), last);
    last = rows.generation();
    // The compaction invariant the trigger maintains.
    ASSERT_LE(rows.dead_entries() * 4, rows.total_entries());
  }
}

TEST(IndexFile, PartitionValidation) {
  IndexFile idx({{1, 0, {0, 1}}, {2, 0, {2}}});
  EXPECT_TRUE(idx.is_partition_of(3));
  EXPECT_NO_THROW(idx.validate_partition(3));
  EXPECT_FALSE(idx.is_partition_of(4));       // missing member 3
  EXPECT_THROW(idx.validate_partition(4), std::logic_error);

  IndexFile dup({{1, 0, {0, 1}}, {2, 0, {1}}});  // member 1 twice
  EXPECT_FALSE(dup.is_partition_of(2));
  EXPECT_THROW(dup.validate_partition(2), std::logic_error);

  IndexFile oob({{1, 0, {5}}});
  EXPECT_THROW(oob.validate_partition(2), std::logic_error);
}

TEST(IndexFile, SummaryStats) {
  IndexFile idx({{1, 0, {0, 1, 2}}, {2, 0, {3}}});
  EXPECT_EQ(idx.total_members(), 4u);
  EXPECT_DOUBLE_EQ(idx.mean_group_size(), 2.0);
  EXPECT_NE(idx.summary().find("groups=2"), std::string::npos);
}

/// Builds a clustered dataset: `clusters` groups of `per_cluster` rows,
/// rows within a cluster nearly identical.
SparseRows clustered_rows(std::size_t clusters, std::size_t per_cluster,
                          std::size_t cols, std::uint64_t seed) {
  common::Rng rng(seed);
  SparseRows rows(cols);
  for (std::size_t k = 0; k < clusters; ++k) {
    // Cluster signature: a disjoint block of columns with high values.
    for (std::size_t u = 0; u < per_cluster; ++u) {
      SparseVector v;
      for (std::size_t c = 0; c < cols; ++c) {
        const bool mine = (c % clusters) == k;
        const double base = mine ? 5.0 : 1.0;
        if (rng.uniform() < 0.8) {
          v.emplace_back(static_cast<std::uint32_t>(c),
                         base + rng.normal(0.0, 0.15));
        }
      }
      rows.add_row(std::move(v));
    }
  }
  return rows;
}

BuildConfig small_config(double ratio = 10.0) {
  BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 60;
  cfg.size_ratio = ratio;
  return cfg;
}

TEST(Builder, IndexPartitionsRows) {
  const SparseRows rows = clustered_rows(4, 25, 16, 3);
  const auto s = SynopsisBuilder(small_config()).build(rows);
  EXPECT_NO_THROW(s.index.validate_partition(rows.rows()));
  EXPECT_GE(s.num_groups(), 2u);
  EXPECT_LE(s.num_groups(), rows.rows() / 5);  // compressed
}

TEST(Builder, CompressionRatioHonored) {
  // Tree levels are discrete, so the builder picks the level closest (in
  // ratio) to n / size_ratio; the group count must stay within one tree
  // fan-out factor of the target and always well below n.
  const SparseRows rows = clustered_rows(5, 40, 20, 4);
  rtree::RTreeParams params;  // fan-out 8
  for (double ratio : {5.0, 10.0, 25.0}) {
    const auto s = SynopsisBuilder(small_config(ratio)).build(rows);
    const double target =
        std::ceil(static_cast<double>(rows.rows()) / ratio);
    const double count = static_cast<double>(s.num_groups());
    EXPECT_LE(count, target * static_cast<double>(params.max_entries))
        << "ratio " << ratio;
    EXPECT_GE(count * static_cast<double>(params.max_entries), target)
        << "ratio " << ratio;
    EXPECT_LE(count * 3.0, static_cast<double>(rows.rows()))
        << "ratio " << ratio;
  }
}

TEST(Builder, GroupsSimilarRows) {
  // Rows from the same cluster should dominantly share groups: measure the
  // fraction of same-cluster pairs among same-group pairs.
  const std::size_t per = 30;
  const SparseRows rows = clustered_rows(4, per, 16, 5);
  const auto s = SynopsisBuilder(small_config()).build(rows);
  std::size_t same_cluster = 0, total_pairs = 0;
  for (const auto& g : s.index.groups()) {
    for (std::size_t i = 0; i < g.members.size(); ++i) {
      for (std::size_t j = i + 1; j < g.members.size(); ++j) {
        total_pairs++;
        same_cluster += (g.members[i] / per) == (g.members[j] / per);
      }
    }
  }
  ASSERT_GT(total_pairs, 0u);
  // Random grouping would score 1/clusters = 0.25; leaf-level STR packing
  // mixes a minority of points at chunk boundaries, so we require the
  // purity to be far above random rather than near-perfect.
  EXPECT_GT(static_cast<double>(same_cluster) /
                static_cast<double>(total_pairs),
            0.6);
}

TEST(Builder, EmptyDatasetThrows) {
  SparseRows rows(4);
  EXPECT_THROW(SynopsisBuilder(small_config()).build(rows),
               std::invalid_argument);
}

TEST(Builder, SingleRowDataset) {
  SparseRows rows(4);
  rows.add_row({{0, 1.0}});
  const auto s = SynopsisBuilder(small_config()).build(rows);
  EXPECT_EQ(s.num_groups(), 1u);
  EXPECT_NO_THROW(s.index.validate_partition(1));
}

TEST(Aggregate, MeanSemantics) {
  SparseRows rows(4);
  rows.add_row({{0, 2.0}, {1, 4.0}});
  rows.add_row({{0, 4.0}});
  IndexGroup g{1, 0, {0, 1}};
  const auto p = aggregate_group(rows, g, AggregationKind::kMean);
  EXPECT_EQ(p.member_count, 2u);
  // Attribute 0: both members -> mean 3; attribute 1: only member 0 -> 4.
  EXPECT_DOUBLE_EQ(value_at(p.features, 0), 3.0);
  EXPECT_DOUBLE_EQ(value_at(p.features, 1), 4.0);
  ASSERT_EQ(p.support.size(), 2u);
  EXPECT_EQ(p.support[0], 2u);
  EXPECT_EQ(p.support[1], 1u);
}

TEST(Aggregate, MergeSemantics) {
  SparseRows rows(4);
  rows.add_row({{0, 2.0}, {1, 4.0}});
  rows.add_row({{0, 4.0}});
  IndexGroup g{1, 0, {0, 1}};
  const auto p = aggregate_group(rows, g, AggregationKind::kMerge);
  EXPECT_DOUBLE_EQ(value_at(p.features, 0), 6.0);  // summed contents
  EXPECT_DOUBLE_EQ(value_at(p.features, 1), 4.0);
  EXPECT_TRUE(p.support.empty());
}

TEST(Aggregate, AllGroupsSerialEqualsParallel) {
  const SparseRows rows = clustered_rows(3, 20, 12, 6);
  const auto s = SynopsisBuilder(small_config()).build(rows);
  const auto serial = aggregate_all(rows, s.index, AggregationKind::kMean);
  common::ThreadPool pool(3);
  const auto parallel =
      aggregate_all(rows, s.index, AggregationKind::kMean, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t g = 0; g < serial.size(); ++g) {
    EXPECT_EQ(serial.points[g].features, parallel.points[g].features);
    EXPECT_EQ(serial.points[g].member_count, parallel.points[g].member_count);
  }
}

TEST(Aggregate, SynopsisSmallerThanInput) {
  const SparseRows rows = clustered_rows(4, 50, 16, 7);
  const auto s = SynopsisBuilder(small_config(20.0)).build(rows);
  const auto syn = aggregate_all(rows, s.index, AggregationKind::kMean);
  EXPECT_LT(syn.size() * 10, rows.rows());
  EXPECT_GT(syn.total_features(), 0u);
}

class UpdaterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rows_ = clustered_rows(4, 25, 16, 8);
    cfg_ = small_config();
    structure_ = SynopsisBuilder(cfg_).build(rows_);
    synopsis_ = aggregate_all(rows_, structure_.index,
                              AggregationKind::kMean);
  }

  SparseRows rows_{16};
  BuildConfig cfg_;
  SynopsisStructure structure_{{}, {}, rtree::RTree(2), 0, {}};
  Synopsis synopsis_;
};

TEST_F(UpdaterTest, AddPointsKeepsPartition) {
  common::Rng rng(1);
  UpdateBatch batch;
  for (int i = 0; i < 10; ++i) {
    SparseVector v;
    for (std::uint32_t c = 0; c < 16; ++c)
      if (rng.uniform() < 0.7) v.emplace_back(c, rng.uniform(1.0, 5.0));
    batch.added.push_back(std::move(v));
  }
  const std::size_t before = rows_.rows();
  SynopsisUpdater updater(cfg_);
  const auto report =
      updater.apply(structure_, rows_, synopsis_, batch,
                    AggregationKind::kMean);
  EXPECT_EQ(report.points_added, 10u);
  EXPECT_EQ(rows_.rows(), before + 10);
  EXPECT_NO_THROW(structure_.index.validate_partition(rows_.rows()));
  EXPECT_EQ(synopsis_.size(), structure_.index.size());
  structure_.tree.check_invariants();
}

TEST_F(UpdaterTest, ChangePointsKeepsPartition) {
  common::Rng rng(2);
  UpdateBatch batch;
  for (std::uint32_t r = 0; r < 8; ++r) {
    SparseVector v;
    for (std::uint32_t c = 0; c < 16; ++c)
      if (rng.uniform() < 0.7) v.emplace_back(c, rng.uniform(1.0, 5.0));
    batch.changed.emplace_back(r * 3, std::move(v));
  }
  const std::size_t before = rows_.rows();
  SynopsisUpdater updater(cfg_);
  const auto report = updater.apply(structure_, rows_, synopsis_, batch,
                                    AggregationKind::kMean);
  EXPECT_EQ(report.points_changed, 8u);
  EXPECT_EQ(rows_.rows(), before);
  EXPECT_NO_THROW(structure_.index.validate_partition(rows_.rows()));
  structure_.tree.check_invariants();
}

TEST_F(UpdaterTest, IncrementalMatchesRebuildAggregation) {
  // After an update, every group's aggregated point must equal a fresh
  // aggregation of its members — dirty-tracking must not serve stale data.
  common::Rng rng(3);
  UpdateBatch batch;
  for (int i = 0; i < 5; ++i) {
    SparseVector v;
    for (std::uint32_t c = 0; c < 16; ++c)
      if (rng.uniform() < 0.7) v.emplace_back(c, rng.uniform(1.0, 5.0));
    batch.added.push_back(std::move(v));
  }
  batch.changed.emplace_back(0, SparseVector{{0, 9.0}, {5, 2.0}});
  SynopsisUpdater updater(cfg_);
  updater.apply(structure_, rows_, synopsis_, batch, AggregationKind::kMean);

  const auto fresh =
      aggregate_all(rows_, structure_.index, AggregationKind::kMean);
  ASSERT_EQ(fresh.size(), synopsis_.size());
  for (std::size_t g = 0; g < fresh.size(); ++g) {
    EXPECT_EQ(fresh.points[g].features, synopsis_.points[g].features)
        << "group " << g << " served stale aggregation";
  }
}

TEST_F(UpdaterTest, CompactionDuringRetrainingCannotAliasStaleExtents) {
  // Regression for the view-lifetime hazard the 25% compaction trigger
  // introduced: a batch of grown replacements compacts the pools midway
  // through the updater's replace phase, relocating every extent. The
  // updater must only take row views *after* all replacements (its
  // retraining phase asserts generation stability), so the retrained
  // coordinates must match a run on a pristine copy where the same final
  // contents were applied without ever triggering compaction mid-batch —
  // any stale-extent read would diverge.
  common::Rng rng(7);
  UpdateBatch batch;
  std::vector<std::pair<std::uint32_t, SparseVector>> finals;
  for (std::uint32_t r = 0; r < 30; ++r) {
    SparseVector v;
    for (std::uint32_t c = 0; c < 16; ++c)
      if (rng.uniform() < 0.95) v.emplace_back(c, rng.uniform(1.0, 5.0));
    finals.emplace_back(r * 3, v);
    batch.changed.emplace_back(r * 3, std::move(v));
  }

  // Reference: identical initial state, identical batch, sequential apply.
  auto ref_rows = rows_;
  auto ref_structure = SynopsisBuilder(cfg_).build(ref_rows);
  auto ref_synopsis =
      aggregate_all(ref_rows, ref_structure.index, AggregationKind::kMean);

  SynopsisUpdater updater(cfg_);
  const auto gen_before = rows_.generation();
  common::ThreadPool pool(4);
  updater.apply(structure_, rows_, synopsis_, batch, AggregationKind::kMean,
                &pool);
  // The batch really did force pool rewrites (grown replacements compact).
  EXPECT_GT(rows_.generation(), gen_before);
  ASSERT_LE(rows_.dead_entries() * 4, rows_.total_entries());

  updater.apply(ref_structure, ref_rows, ref_synopsis, batch,
                AggregationKind::kMean, nullptr);

  // Contents: every changed row reads back its final batch content.
  for (const auto& [row, content] : finals) {
    auto expect = content;
    normalize(expect);
    EXPECT_EQ(rows_.row(row), expect) << "row " << row;
  }
  // Retrained coordinates bit-match the sequential reference — stale
  // extents (pre-compaction pool pointers) would have fed the retraining
  // garbage and diverged.
  ASSERT_EQ(structure_.svd.row_factors.rows(),
            ref_structure.svd.row_factors.rows());
  for (std::size_t r = 0; r < structure_.svd.row_factors.rows(); ++r)
    for (std::size_t d = 0; d < structure_.svd.row_factors.cols(); ++d)
      ASSERT_EQ(structure_.svd.row_factors(r, d),
                ref_structure.svd.row_factors(r, d))
          << "row factor (" << r << "," << d << ")";
  ASSERT_EQ(synopsis_.size(), ref_synopsis.size());
  for (std::size_t g = 0; g < synopsis_.size(); ++g) {
    EXPECT_EQ(synopsis_.points[g].features, ref_synopsis.points[g].features)
        << "group " << g;
  }
}

TEST_F(UpdaterTest, CleanGroupsAreReused) {
  // A tiny, localized change should leave most groups clean.
  UpdateBatch batch;
  batch.changed.emplace_back(0, SparseVector{{1, 3.0}});
  SynopsisUpdater updater(cfg_);
  const auto report = updater.apply(structure_, rows_, synopsis_, batch,
                                    AggregationKind::kMean);
  EXPECT_GT(report.clean_groups, 0u);
  EXPECT_GT(report.dirty_groups, 0u);
  EXPECT_LT(report.dirty_groups, report.groups_after);
}

TEST_F(UpdaterTest, EmptyBatchIsCheapNoop) {
  SynopsisUpdater updater(cfg_);
  const auto before_groups = structure_.index.size();
  const auto report = updater.apply(structure_, rows_, synopsis_, {},
                                    AggregationKind::kMean);
  EXPECT_EQ(report.points_added, 0u);
  EXPECT_EQ(report.points_changed, 0u);
  EXPECT_EQ(report.dirty_groups, 0u);
  EXPECT_EQ(structure_.index.size(), before_groups);
}

TEST_F(UpdaterTest, ChangedRowOutOfRangeThrows) {
  UpdateBatch batch;
  batch.changed.emplace_back(10000, SparseVector{{0, 1.0}});
  SynopsisUpdater updater(cfg_);
  EXPECT_THROW(updater.apply(structure_, rows_, synopsis_, batch,
                             AggregationKind::kMean),
               std::out_of_range);
}

TEST_F(UpdaterTest, RepeatedUpdatesStayConsistent) {
  common::Rng rng(9);
  SynopsisUpdater updater(cfg_);
  for (int round = 0; round < 5; ++round) {
    UpdateBatch batch;
    SparseVector v;
    for (std::uint32_t c = 0; c < 16; ++c)
      if (rng.uniform() < 0.7) v.emplace_back(c, rng.uniform(1.0, 5.0));
    batch.added.push_back(v);
    const auto victim =
        static_cast<std::uint32_t>(rng.uniform_index(rows_.rows()));
    batch.changed.emplace_back(victim, v);
    updater.apply(structure_, rows_, synopsis_, batch,
                  AggregationKind::kMean);
    ASSERT_NO_THROW(structure_.index.validate_partition(rows_.rows()));
    structure_.tree.check_invariants();
  }
}

// ---------------------------------------------------------------------------
// MultiResolutionSynopsis (the paper's §2.3 load-adaptive extension)
// ---------------------------------------------------------------------------

class MultiResTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rows_ = clustered_rows(4, 40, 16, 31);
    structure_ = SynopsisBuilder(small_config(4.0)).build(rows_);
    multi_ = std::make_unique<MultiResolutionSynopsis>(
        structure_, rows_, AggregationKind::kMean);
  }

  SparseRows rows_{16};
  SynopsisStructure structure_{{}, {}, rtree::RTree(2), 0, {}};
  std::unique_ptr<MultiResolutionSynopsis> multi_;
};

TEST_F(MultiResTest, LevelsAreMonotonicallyCoarser) {
  ASSERT_GE(multi_->levels(), 2u);
  for (std::size_t r = 1; r < multi_->levels(); ++r) {
    EXPECT_LT(multi_->level(r).groups(), multi_->level(r - 1).groups());
  }
}

TEST_F(MultiResTest, EveryLevelPartitionsTheData) {
  for (std::size_t r = 0; r < multi_->levels(); ++r) {
    EXPECT_NO_THROW(multi_->level(r).index.validate_partition(rows_.rows()))
        << "resolution " << r;
    EXPECT_EQ(multi_->level(r).synopsis.size(),
              multi_->level(r).index.size());
  }
}

TEST_F(MultiResTest, FinestLevelIsLeafLevel) {
  EXPECT_EQ(multi_->level(0).tree_level, 0u);
  EXPECT_EQ(multi_->level(0).groups(),
            structure_.tree.node_count_at_level(0));
}

TEST_F(MultiResTest, BudgetPicksFinestAffordable) {
  const std::size_t fine = multi_->level(0).groups();
  // Generous budget -> finest.
  EXPECT_EQ(multi_->pick_for_budget(fine), 0u);
  // Budget below the coarsest level -> coarsest (degrade, never refuse).
  EXPECT_EQ(multi_->pick_for_budget(1), multi_->levels() - 1);
  // Budget exactly at a middle level's size picks that level.
  if (multi_->levels() >= 2) {
    const std::size_t mid = multi_->level(1).groups();
    EXPECT_EQ(multi_->pick_for_budget(mid), 1u);
  }
}

TEST_F(MultiResTest, DeadlinePolicyDegradesUnderLoad) {
  const double ms_per_group = 0.1;
  // Plenty of time: finest resolution.
  const auto light = multi_->pick_for_deadline(100.0, ms_per_group);
  // Nearly no time left: coarsest.
  const auto heavy = multi_->pick_for_deadline(0.5, ms_per_group);
  EXPECT_LT(light, multi_->levels());
  EXPECT_EQ(light, 0u);
  EXPECT_EQ(heavy, multi_->levels() - 1);
  EXPECT_THROW(multi_->pick_for_deadline(10.0, 0.0), std::invalid_argument);
}

TEST_F(MultiResTest, CoarseAggregatesAreConsistentWithFine) {
  // A coarse aggregated point covers the union of some fine groups; its
  // per-attribute support must equal the sum of the fine supports.
  if (multi_->levels() < 2) GTEST_SKIP();
  const auto& fine = multi_->level(0);
  const auto& coarse = multi_->level(1);
  std::size_t fine_total = 0, coarse_total = 0;
  for (const auto& p : fine.synopsis.points)
    for (auto s : p.support) fine_total += s;
  for (const auto& p : coarse.synopsis.points)
    for (auto s : p.support) coarse_total += s;
  EXPECT_EQ(fine_total, coarse_total);  // same underlying observations
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, SparseRowsRoundTrip) {
  const SparseRows rows = clustered_rows(3, 15, 12, 21);
  std::stringstream buf;
  save(buf, rows);
  const SparseRows loaded = load_sparse_rows(buf);
  ASSERT_EQ(loaded.rows(), rows.rows());
  ASSERT_EQ(loaded.cols(), rows.cols());
  for (std::uint32_t r = 0; r < rows.rows(); ++r)
    EXPECT_EQ(loaded.row(r), rows.row(r));
}

TEST(Serialize, SparseRowsRoundTripBitExactWithHolesAndFractions) {
  SparseRows rows(40);
  common::Rng rng(91);
  for (int r = 0; r < 30; ++r) {
    SparseVector v;
    for (std::uint32_t c = 0; c < 40; ++c) {
      if (rng.uniform() < 0.3) v.emplace_back(c, rng.uniform(0.25, 300.0));
    }
    rows.add_row(std::move(v));
  }
  // Leave holes/relocations behind so serialization sees a mutated pool.
  rows.replace_row(2, {{0, 0.5}, {39, 256.0}});
  SparseVector grown;
  for (std::uint32_t c = 0; c < 35; ++c) grown.emplace_back(c, 1.0 + c);
  rows.replace_row(5, grown);

  std::stringstream buf;
  save(buf, rows);
  const SparseRows loaded = load_sparse_rows(buf);
  ASSERT_EQ(loaded.rows(), rows.rows());
  ASSERT_EQ(loaded.total_entries(), rows.total_entries());
  for (std::uint32_t r = 0; r < rows.rows(); ++r) {
    const auto a = rows.row(r);
    const auto b = loaded.row(r);
    ASSERT_EQ(a.size(), b.size()) << "row " << r;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.cols()[i], b.cols()[i]);
      EXPECT_EQ(a.vals()[i], b.vals()[i]) << "row " << r << " entry " << i;
    }
  }
}

TEST(Serialize, LoadsV1UncompressedSparseRows) {
  // A v1 file (raw u32/f64 pairs per row) written by the previous release
  // must keep loading through the new codec-aware reader.
  const SparseVector row0{{1, 2.5}, {6, 3.0}};
  const SparseVector row1{{0, 1.0}};
  std::stringstream buf;
  {
    common::BinaryWriter w(buf);
    w.magic("ATSR", 1);
    w.u64(8);  // cols
    w.u64(2);  // rows
    for (const auto* row : {&row0, &row1}) {
      w.u64(row->size());
      for (const auto& [c, val] : *row) {
        w.u32(c);
        w.f64(val);
      }
    }
  }
  const SparseRows loaded = load_sparse_rows(buf);
  ASSERT_EQ(loaded.rows(), 2u);
  EXPECT_EQ(loaded.cols(), 8u);
  EXPECT_EQ(loaded.row(0), row0);
  EXPECT_EQ(loaded.row(1), row1);
}

TEST(Serialize, LoadsV2CompressedSparseRows) {
  // A v2 file (block-compressed, but from before the u8-delta tag existed
  // — only varint/group-varint blocks) must keep loading; the writer now
  // stamps v3 because its blocks may carry the new tag.
  const SparseVector row0{{300, 2.5}, {1200, 3.0}};  // gaps > 255: varint
  std::stringstream buf;
  {
    common::BinaryWriter w(buf);
    w.magic("ATSR", 2);
    w.u64(2048);  // cols
    w.u64(1);     // rows
    std::vector<std::uint32_t> ids;
    std::vector<double> vals;
    for (const auto& [c, val] : row0) {
      ids.push_back(c);
      vals.push_back(val);
    }
    std::vector<std::uint8_t> blob;
    search::codec::encode_list(blob, ids.data(), vals.data(), ids.size());
    ASSERT_EQ(blob[0], search::codec::kTagVarint);  // genuinely v2-shaped
    w.u64(ids.size());
    w.blob(blob);
  }
  const SparseRows loaded = load_sparse_rows(buf);
  ASSERT_EQ(loaded.rows(), 1u);
  EXPECT_EQ(loaded.row(0), row0);
}

TEST(Serialize, UnknownRowsVersionThrows) {
  std::stringstream buf;
  {
    common::BinaryWriter w(buf);
    w.magic("ATSR", 99);
    w.u64(4);
    w.u64(0);
  }
  EXPECT_THROW(load_sparse_rows(buf), std::runtime_error);
}

TEST(Serialize, MatrixAndSvdRoundTrip) {
  linalg::Matrix m(3, 4);
  m(0, 0) = 1.5;
  m(2, 3) = -7.25;
  std::stringstream buf;
  save(buf, m);
  const auto lm = load_matrix(buf);
  ASSERT_EQ(lm.rows(), 3u);
  EXPECT_DOUBLE_EQ(lm(2, 3), -7.25);

  const SparseRows rows = clustered_rows(2, 10, 8, 22);
  linalg::SvdConfig cfg;
  cfg.rank = 2;
  cfg.epochs_per_dim = 20;
  const auto model = linalg::incremental_svd(rows.to_dataset(), cfg);
  std::stringstream buf2;
  save(buf2, model);
  const auto lmodel = load_svd_model(buf2);
  EXPECT_DOUBLE_EQ(lmodel.train_rmse, model.train_rmse);
  for (std::size_t r = 0; r < model.row_factors.rows(); ++r)
    for (std::size_t d = 0; d < 2; ++d)
      EXPECT_DOUBLE_EQ(lmodel.row_factors(r, d), model.row_factors(r, d));
}

TEST(Serialize, IndexFileRoundTrip) {
  IndexFile idx({{11, 3, {0, 2}}, {22, 7, {1, 3, 4}}});
  std::stringstream buf;
  save(buf, idx);
  const auto loaded = load_index_file(buf);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.groups()[0].node_id, 11u);
  EXPECT_EQ(loaded.groups()[1].version, 7u);
  EXPECT_EQ(loaded.groups()[1].members, (std::vector<std::uint32_t>{1, 3, 4}));
}

TEST(Serialize, SynopsisRoundTrip) {
  const SparseRows rows = clustered_rows(3, 15, 12, 23);
  const auto s = SynopsisBuilder(small_config()).build(rows);
  const auto syn = aggregate_all(rows, s.index, AggregationKind::kMean);
  std::stringstream buf;
  save(buf, syn);
  const auto loaded = load_synopsis(buf);
  ASSERT_EQ(loaded.size(), syn.size());
  for (std::size_t g = 0; g < syn.size(); ++g) {
    EXPECT_EQ(loaded.points[g].features, syn.points[g].features);
    EXPECT_EQ(loaded.points[g].support, syn.points[g].support);
    EXPECT_EQ(loaded.points[g].member_count, syn.points[g].member_count);
  }
}

TEST(Serialize, StructureRoundTripAllowsFurtherUpdates) {
  SparseRows rows = clustered_rows(4, 20, 16, 24);
  const BuildConfig cfg = small_config();
  auto s = SynopsisBuilder(cfg).build(rows);
  auto syn = aggregate_all(rows, s.index, AggregationKind::kMean);

  std::stringstream buf;
  save(buf, s);
  auto loaded = load_structure(buf);
  EXPECT_EQ(loaded.level, s.level);
  EXPECT_EQ(loaded.num_points(), s.num_points());
  ASSERT_EQ(loaded.index.size(), s.index.size());
  for (std::size_t g = 0; g < s.index.size(); ++g) {
    EXPECT_EQ(loaded.index.groups()[g].members, s.index.groups()[g].members);
    EXPECT_EQ(loaded.index.groups()[g].version, s.index.groups()[g].version);
  }

  // The reloaded structure supports incremental updating: dirty tracking
  // must behave as if the process never restarted.
  common::Rng rng(5);
  UpdateBatch batch;
  batch.changed.emplace_back(0, SparseVector{{1, 4.0}, {3, 2.0}});
  SynopsisUpdater updater(cfg);
  const auto report =
      updater.apply(loaded, rows, syn, batch, AggregationKind::kMean);
  EXPECT_GT(report.clean_groups, 0u);
  EXPECT_NO_THROW(loaded.index.validate_partition(rows.rows()));
  loaded.tree.check_invariants();
}

TEST(Serialize, TruncatedInputThrows) {
  const SparseRows rows = clustered_rows(2, 10, 8, 25);
  std::stringstream buf;
  save(buf, rows);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream half(data);
  EXPECT_THROW(load_sparse_rows(half), std::runtime_error);
}

TEST(Serialize, WrongArtifactMagicThrows) {
  IndexFile idx({{1, 0, {0}}});
  std::stringstream buf;
  save(buf, idx);
  EXPECT_THROW(load_sparse_rows(buf), std::runtime_error);
}

}  // namespace
}  // namespace at::synopsis
