// Failpoint layer tests: spec parsing, arming/clearing, hit budgets, and
// the contract each wired site keeps (artifact reads surface ArtifactError,
// executor dispatch surfaces the raw FailpointError, unarmed sites are
// free).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/artifact.h"
#include "common/failpoint.h"
#include "common/sharded_executor.h"
#include "common/stopwatch.h"

namespace fp = at::common::failpoint;

namespace {

/// Every test leaves the registry clean so suites can run in any order.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

TEST_F(FailpointTest, UnarmedSiteIsOffAndFree) {
  EXPECT_FALSE(fp::any_armed());
  EXPECT_EQ(fp::check("nonexistent.site").action, fp::Action::kOff);
  EXPECT_FALSE(AT_FAILPOINT("nonexistent.site"));
  EXPECT_EQ(fp::hits("nonexistent.site"), 0u);
}

TEST_F(FailpointTest, ErrorActionThrowsUntilCleared) {
  fp::set("unit.a", "error");
  EXPECT_TRUE(fp::any_armed());
  EXPECT_THROW(fp::check_throw("unit.a"), fp::FailpointError);
  EXPECT_THROW((void)AT_FAILPOINT("unit.a"), fp::FailpointError);
  EXPECT_EQ(fp::hits("unit.a"), 2u);
  fp::clear("unit.a");
  EXPECT_FALSE(fp::any_armed());
  EXPECT_NO_THROW((void)AT_FAILPOINT("unit.a"));
}

TEST_F(FailpointTest, DelayActionSleepsInline) {
  fp::set("unit.delay", "delay:30");
  at::common::Stopwatch sw;
  const auto d = fp::check("unit.delay");
  EXPECT_EQ(d.action, fp::Action::kDelay);
  EXPECT_GE(sw.elapsed_ms(), 25.0);  // sleep_for may round, allow slack
}

TEST_F(FailpointTest, ShortWriteActionReturnsTrueFromMacro) {
  fp::set("unit.sw", "short_write");
  EXPECT_TRUE(AT_FAILPOINT("unit.sw"));
}

TEST_F(FailpointTest, HitBudgetDisarmsAfterN) {
  fp::set("unit.budget", "error:x2");
  EXPECT_THROW(fp::check_throw("unit.budget"), fp::FailpointError);
  EXPECT_THROW(fp::check_throw("unit.budget"), fp::FailpointError);
  // Third hit: budget exhausted, the site is off again.
  EXPECT_NO_THROW(fp::check_throw("unit.budget"));
  EXPECT_EQ(fp::hits("unit.budget"), 2u);
}

TEST_F(FailpointTest, SetManyParsesMultiSpec) {
  EXPECT_EQ(fp::set_many("a.x=error;b.y=delay:5;c.z=short_write:x3"), 3u);
  EXPECT_THROW(fp::check_throw("a.x"), fp::FailpointError);
  EXPECT_EQ(fp::check("b.y").action, fp::Action::kDelay);
  EXPECT_TRUE(fp::check_throw("c.z"));
}

TEST_F(FailpointTest, MalformedSpecsThrowAndArmNothing) {
  EXPECT_THROW(fp::set("s", "explode"), std::invalid_argument);
  EXPECT_THROW(fp::set("s", "delay"), std::invalid_argument);        // no ms
  EXPECT_THROW(fp::set("s", "delay:abc"), std::invalid_argument);
  EXPECT_THROW(fp::set("s", "error:x0"), std::invalid_argument);     // x>=1
  EXPECT_THROW(fp::set("", "error"), std::invalid_argument);         // site
  // set_many is atomic: one bad entry arms nothing.
  EXPECT_THROW(fp::set_many("ok.site=error;bad.site=banana"),
               std::invalid_argument);
  EXPECT_FALSE(fp::any_armed());
  EXPECT_EQ(fp::check("ok.site").action, fp::Action::kOff);
}

TEST_F(FailpointTest, ConcurrentChecksCountEveryHit) {
  fp::set("unit.mt", "error");
  std::atomic<std::size_t> caught{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&caught] {
      for (int i = 0; i < 100; ++i) {
        try {
          fp::check_throw("unit.mt");
        } catch (const fp::FailpointError&) {
          caught.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(caught.load(), 800u);
  EXPECT_EQ(fp::hits("unit.mt"), 800u);
}

// ---------------------------------------------------------------------------
// Wired sites keep their layer's error contract
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, ArtifactChunkSiteSurfacesArtifactError) {
  // A valid artifact that reads fine unarmed...
  std::ostringstream os;
  {
    at::common::ArtifactWriter w(os, "TSTK", 1);
    at::common::ChunkWriter cw;
    cw.u32(42);
    w.chunk("DATA", cw);
    w.finish();
  }
  const std::string bytes = os.str();
  {
    std::istringstream is(bytes);
    at::common::ArtifactReader r(is, "TSTK");
    EXPECT_NO_THROW(r.chunk("DATA"));
  }
  // ...fails with the artifact layer's own structured error when armed —
  // never a bare FailpointError escaping through load paths.
  fp::set("artifact.chunk", "error");
  std::istringstream is(bytes);
  at::common::ArtifactReader r(is, "TSTK");
  try {
    r.chunk("DATA");
    FAIL() << "expected ArtifactError";
  } catch (const at::common::ArtifactError&) {
  } catch (...) {
    FAIL() << "wrong exception type escaped the artifact layer";
  }
  // Recovery: clearing the failpoint restores normal reads.
  fp::clear_all();
  std::istringstream is2(bytes);
  at::common::ArtifactReader r2(is2, "TSTK");
  EXPECT_NO_THROW(r2.chunk("DATA"));
}

TEST_F(FailpointTest, ExecutorDispatchSiteFailsFanOut) {
  at::common::ShardedExecutor exec;
  fp::set("executor.dispatch", "error:x1");
  std::atomic<int> ran{0};
  EXPECT_THROW(
      exec.for_each_shard_grouped(4, [&](std::size_t) { ran.fetch_add(1); }),
      fp::FailpointError);
  // Budget x1: the very next dispatch succeeds — callers recover.
  exec.for_each_shard_grouped(4, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
