// CF recommender tests: Pearson math, prediction identities, component
// decomposition properties, service-level technique semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/algorithm1.h"
#include "services/recommender/cf.h"
#include "services/recommender/component.h"
#include "services/recommender/service.h"
#include "workload/ratings.h"

namespace at::reco {
namespace {

synopsis::BuildConfig test_build_config() {
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 50;
  cfg.size_ratio = 10.0;
  return cfg;
}

TEST(Pearson, PerfectPositiveCorrelation) {
  synopsis::SparseVector a{{0, 1.0}, {1, 2.0}, {2, 3.0}};
  synopsis::SparseVector b{{0, 2.0}, {1, 4.0}, {2, 6.0}};
  EXPECT_NEAR(pearson_weight(a, 2.0, b, 4.0), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  synopsis::SparseVector a{{0, 1.0}, {1, 2.0}, {2, 3.0}};
  synopsis::SparseVector b{{0, 3.0}, {1, 2.0}, {2, 1.0}};
  EXPECT_NEAR(pearson_weight(a, 2.0, b, 2.0), -1.0, 1e-12);
}

TEST(Pearson, RangeBound) {
  synopsis::SparseVector a{{0, 5.0}, {1, 1.0}, {3, 4.0}, {7, 2.0}};
  synopsis::SparseVector b{{0, 2.0}, {1, 4.0}, {3, 3.0}, {9, 5.0}};
  const double w = pearson_weight(a, 3.0, b, 3.5);
  EXPECT_GE(w, -1.0);
  EXPECT_LE(w, 1.0);
}

TEST(Pearson, RequiresTwoCoRatedItems) {
  synopsis::SparseVector a{{0, 5.0}};
  synopsis::SparseVector b{{0, 5.0}};
  EXPECT_DOUBLE_EQ(pearson_weight(a, 5.0, b, 5.0), 0.0);
  synopsis::SparseVector c{{5, 1.0}};
  EXPECT_DOUBLE_EQ(pearson_weight(a, 5.0, c, 1.0), 0.0);  // disjoint
}

TEST(Pearson, ZeroVarianceIsZeroWeight) {
  synopsis::SparseVector flat{{0, 3.0}, {1, 3.0}, {2, 3.0}};
  synopsis::SparseVector other{{0, 1.0}, {1, 2.0}, {2, 5.0}};
  EXPECT_DOUBLE_EQ(pearson_weight(flat, 3.0, other, 8.0 / 3.0), 0.0);
}

TEST(CfRequestBuild, ComputesMean) {
  const auto req = CfRequest::make({{3, 2.0}, {1, 4.0}}, 9);
  EXPECT_DOUBLE_EQ(req.rating_mean, 3.0);
  EXPECT_EQ(req.target_item, 9u);
  EXPECT_EQ(req.ratings[0].first, 1u);  // normalized
}

TEST(Predict, FallsBackToUserMean) {
  const auto req = CfRequest::make({{0, 4.0}, {1, 2.0}}, 5);
  CfPartial empty;
  EXPECT_DOUBLE_EQ(predict(req, empty, 1.0, 5.0), 3.0);
}

TEST(Predict, WeightedDeviationAndClamp) {
  const auto req = CfRequest::make({{0, 4.0}, {1, 4.0}}, 5);
  CfPartial p;
  p.weighted_dev = 2.0;
  p.weight_abs = 1.0;
  EXPECT_DOUBLE_EQ(predict(req, p, 1.0, 5.0), 5.0);  // 4 + 2 clamped to 5
  p.weighted_dev = -10.0;
  EXPECT_DOUBLE_EQ(predict(req, p, 1.0, 5.0), 1.0);
}

TEST(PartialAlgebra, MergeSubtractRoundTrip) {
  CfPartial a{1.0, 2.0, 3};
  const CfPartial b{0.5, 0.25, 1};
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.weighted_dev, 1.5);
  a.subtract(b);
  EXPECT_DOUBLE_EQ(a.weighted_dev, 1.0);
  EXPECT_DOUBLE_EQ(a.weight_abs, 2.0);
  EXPECT_EQ(a.neighbors, 3u);
}

TEST(Pearson, SymmetryProperty) {
  common::Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    synopsis::SparseVector a, b;
    for (std::uint32_t c = 0; c < 40; ++c) {
      if (rng.bernoulli(0.5)) a.emplace_back(c, rng.uniform(1.0, 5.0));
      if (rng.bernoulli(0.5)) b.emplace_back(c, rng.uniform(1.0, 5.0));
    }
    const double ma = vector_mean(a);
    const double mb = vector_mean(b);
    EXPECT_NEAR(pearson_weight(a, ma, b, mb), pearson_weight(b, mb, a, ma),
                1e-12);
  }
}

TEST(Pearson, InvariantToAffineRescaling) {
  // Pearson is invariant to positive linear transforms of either side
  // when the means transform accordingly.
  synopsis::SparseVector a{{0, 1.0}, {1, 3.0}, {2, 5.0}, {3, 2.0}};
  synopsis::SparseVector b{{0, 2.0}, {1, 5.0}, {2, 9.0}, {3, 4.0}};
  synopsis::SparseVector b2;
  for (auto [c, v] : b) b2.emplace_back(c, 10.0 + 2.0 * v);
  const double ma = vector_mean(a);
  EXPECT_NEAR(pearson_weight(a, ma, b, vector_mean(b)),
              pearson_weight(a, ma, b2, vector_mean(b2)), 1e-12);
}

// Prediction clamping property across rating ranges.
class PredictClamp
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PredictClamp, AlwaysWithinRange) {
  const auto [lo, hi] = GetParam();
  common::Rng rng(81);
  for (int trial = 0; trial < 200; ++trial) {
    const auto req = CfRequest::make(
        {{0, rng.uniform(lo, hi)}, {1, rng.uniform(lo, hi)}}, 5);
    CfPartial p;
    p.weighted_dev = rng.normal(0.0, 10.0);
    p.weight_abs = rng.uniform(0.0, 2.0);
    const double pred = predict(req, p, lo, hi);
    EXPECT_GE(pred, lo);
    EXPECT_LE(pred, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, PredictClamp,
    ::testing::Values(std::make_pair(1.0, 5.0), std::make_pair(0.0, 1.0),
                      std::make_pair(-10.0, 10.0),
                      std::make_pair(1.0, 10.0)));

TEST(Rmse, KnownValuesAndNanPenalty) {
  EXPECT_DOUBLE_EQ(rmse({1.0, 3.0}, {1.0, 1.0}, 4.0), std::sqrt(2.0));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(rmse({nan}, {3.0}, 4.0), 4.0);  // worst-case charge
}

TEST(AccuracyMapping, Monotone) {
  EXPECT_DOUBLE_EQ(accuracy_from_rmse(0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(accuracy_from_rmse(4.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(accuracy_from_rmse(8.0, 4.0), 0.0);  // clamped
  EXPECT_GT(accuracy_from_rmse(1.0, 4.0), accuracy_from_rmse(2.0, 4.0));
  EXPECT_DOUBLE_EQ(accuracy_loss_pct(0.8, 0.6), 25.0);
  EXPECT_DOUBLE_EQ(accuracy_loss_pct(0.8, 0.9), 0.0);  // no negative loss
}

class ComponentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::RatingConfig cfg;
    cfg.num_components = 1;
    cfg.users_per_component = 150;
    cfg.num_items = 80;
    cfg.num_clusters = 6;
    cfg.seed = 42;
    workload::RatingWorkloadGen gen(cfg);
    workload_ = gen.generate(30, 2);
    component_ = std::make_unique<RecommenderComponent>(
        std::move(workload_.subsets[0]), test_build_config());
  }

  workload::RatingWorkload workload_;
  std::unique_ptr<RecommenderComponent> component_;
};

TEST_F(ComponentTest, SynopsisCompressed) {
  EXPECT_GE(component_->num_groups(), 2u);
  EXPECT_LE(component_->num_groups() * 5, component_->num_users());
  const auto sizes = component_->group_sizes();
  std::size_t total = 0;
  for (auto s : sizes) total += s;
  EXPECT_EQ(total, component_->num_users());
}

TEST_F(ComponentTest, ExactEqualsSumOfGroups) {
  ASSERT_FALSE(workload_.requests.empty());
  const auto& req = workload_.requests[0];
  const auto work = component_->analyze(req);
  CfPartial sum;
  for (const auto& p : work.real_by_group) sum.merge(p);
  const CfPartial exact = work.exact();
  EXPECT_DOUBLE_EQ(sum.weighted_dev, exact.weighted_dev);
  EXPECT_DOUBLE_EQ(sum.weight_abs, exact.weight_abs);
}

TEST_F(ComponentTest, AfterAllSetsEqualsExact) {
  const auto& req = workload_.requests[0];
  const auto work = component_->analyze(req);
  const auto ranked = core::rank_by_correlation(work.correlations);
  const CfPartial full = work.after_sets(ranked, ranked.size());
  const CfPartial exact = work.exact();
  EXPECT_NEAR(full.weighted_dev, exact.weighted_dev, 1e-9);
  EXPECT_NEAR(full.weight_abs, exact.weight_abs, 1e-9);
}

TEST_F(ComponentTest, AfterZeroSetsEqualsStage1) {
  const auto& req = workload_.requests[0];
  const auto work = component_->analyze(req);
  const auto ranked = core::rank_by_correlation(work.correlations);
  const CfPartial none = work.after_sets(ranked, 0);
  const CfPartial stage1 = work.stage1();
  EXPECT_DOUBLE_EQ(none.weighted_dev, stage1.weighted_dev);
  EXPECT_DOUBLE_EQ(none.weight_abs, stage1.weight_abs);
}

TEST_F(ComponentTest, CorrelationsAreAbsoluteWeights) {
  const auto& req = workload_.requests[0];
  const auto work = component_->analyze(req);
  for (double c : work.correlations) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_F(ComponentTest, MoreSetsMonotonicallyApproachExact) {
  // Processing more ranked sets should (weakly) shrink the gap to the
  // exact prediction for most requests — spot check the average.
  double gap_few = 0.0, gap_many = 0.0;
  int counted = 0;
  for (std::size_t r = 0; r < std::min<std::size_t>(20,
                                                    workload_.requests.size());
       ++r) {
    const auto& req = workload_.requests[r];
    const auto work = component_->analyze(req);
    const auto ranked = core::rank_by_correlation(work.correlations);
    const double exact = predict(req, work.exact(), 1.0, 5.0);
    const double few =
        predict(req, work.after_sets(ranked, 1), 1.0, 5.0);
    const double many = predict(
        req, work.after_sets(ranked, ranked.size() / 2 + 1), 1.0, 5.0);
    gap_few += std::abs(few - exact);
    gap_many += std::abs(many - exact);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LE(gap_many, gap_few + 1e-9);
}

TEST_F(ComponentTest, UpdateAddUsersGrowsComponent) {
  common::Rng rng(5);
  synopsis::UpdateBatch batch;
  workload::RatingConfig cfg;
  cfg.num_items = 80;
  workload::RatingWorkloadGen gen(cfg);
  for (int i = 0; i < 5; ++i) batch.added.push_back(gen.sample_user(rng));
  const auto before = component_->num_users();
  const auto report = component_->update(batch);
  EXPECT_EQ(report.points_added, 5u);
  EXPECT_EQ(component_->num_users(), before + 5);
  // Analysis still works after the update.
  const auto work = component_->analyze(workload_.requests[0]);
  EXPECT_EQ(work.correlations.size(), component_->num_groups());
}

TEST_F(ComponentTest, SaveLoadRoundTripServesIdentically) {
  std::stringstream buf;
  component_->save(buf);
  RecommenderComponent loaded = RecommenderComponent::load(buf);
  EXPECT_EQ(loaded.num_users(), component_->num_users());
  EXPECT_EQ(loaded.num_groups(), component_->num_groups());

  for (std::size_t r = 0; r < std::min<std::size_t>(
                              10, workload_.requests.size());
       ++r) {
    const auto& req = workload_.requests[r];
    const auto before = component_->analyze(req);
    const auto after = loaded.analyze(req);
    ASSERT_EQ(before.correlations.size(), after.correlations.size());
    for (std::size_t g = 0; g < before.correlations.size(); ++g) {
      EXPECT_DOUBLE_EQ(before.correlations[g], after.correlations[g]);
      EXPECT_DOUBLE_EQ(before.real_by_group[g].weighted_dev,
                       after.real_by_group[g].weighted_dev);
      EXPECT_DOUBLE_EQ(before.agg_by_group[g].weight_abs,
                       after.agg_by_group[g].weight_abs);
    }
  }
}

TEST_F(ComponentTest, LoadedComponentAcceptsUpdates) {
  std::stringstream buf;
  component_->save(buf);
  RecommenderComponent loaded = RecommenderComponent::load(buf);
  common::Rng rng(7);
  workload::RatingConfig cfg;
  cfg.num_items = 80;
  workload::RatingWorkloadGen gen(cfg);
  synopsis::UpdateBatch batch;
  batch.added.push_back(gen.sample_user(rng));
  const auto before = loaded.num_users();
  const auto report = loaded.update(batch);
  EXPECT_EQ(report.points_added, 1u);
  EXPECT_EQ(loaded.num_users(), before + 1);
  // A small update should reuse most cached aggregations.
  EXPECT_GT(report.clean_groups, 0u);
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::RatingConfig cfg;
    cfg.num_components = 3;
    cfg.users_per_component = 100;
    cfg.num_items = 60;
    cfg.num_clusters = 5;
    cfg.seed = 17;
    workload::RatingWorkloadGen gen(cfg);
    workload_ = gen.generate(40, 2);
    std::vector<RecommenderComponent> comps;
    for (auto& subset : workload_.subsets) {
      comps.emplace_back(std::move(subset), test_build_config());
    }
    service_ = std::make_unique<CfService>(std::move(comps), 1.0, 5.0);
  }

  workload::RatingWorkload workload_;
  std::unique_ptr<CfService> service_;
};

TEST_F(ServiceTest, ExactPredictionInRange) {
  for (std::size_t r = 0; r < 10; ++r) {
    const double p = service_->predict_exact(workload_.requests[r]);
    EXPECT_GE(p, 1.0);
    EXPECT_LE(p, 5.0);
  }
}

TEST_F(ServiceTest, BasicAndReissueAreExact) {
  const auto& req = workload_.requests[0];
  const double exact = service_->predict_exact(req);
  const std::vector<ComponentOutcome> outcomes(service_->num_components());
  EXPECT_DOUBLE_EQ(service_->predict(req, core::Technique::kBasic, outcomes),
                   exact);
  EXPECT_DOUBLE_EQ(
      service_->predict(req, core::Technique::kRequestReissue, outcomes),
      exact);
}

TEST_F(ServiceTest, PartialWithAllIncludedIsExact) {
  const auto& req = workload_.requests[1];
  std::vector<ComponentOutcome> outcomes(service_->num_components());
  for (auto& o : outcomes) o.included = true;
  EXPECT_DOUBLE_EQ(
      service_->predict(req, core::Technique::kPartialExecution, outcomes),
      service_->predict_exact(req));
}

TEST_F(ServiceTest, PartialWithNoneIncludedIsNan) {
  const auto& req = workload_.requests[1];
  std::vector<ComponentOutcome> outcomes(service_->num_components());
  for (auto& o : outcomes) o.included = false;
  EXPECT_TRUE(std::isnan(
      service_->predict(req, core::Technique::kPartialExecution, outcomes)));
}

TEST_F(ServiceTest, AccuracyTraderAllSetsEqualsExact) {
  const auto& req = workload_.requests[2];
  std::vector<ComponentOutcome> outcomes(service_->num_components());
  for (auto& o : outcomes) o.sets = 1000000;  // everything
  EXPECT_NEAR(
      service_->predict(req, core::Technique::kAccuracyTrader, outcomes),
      service_->predict_exact(req), 1e-9);
}

TEST_F(ServiceTest, EvaluateExactHasZeroLoss) {
  const auto result = service_->evaluate_uniform(
      workload_.requests, workload_.actuals, core::Technique::kBasic, {});
  EXPECT_DOUBLE_EQ(result.loss_pct, 0.0);
  EXPECT_GT(result.accuracy, 0.5);  // clustered data is predictable
}

TEST_F(ServiceTest, PartialLossGrowsAsComponentsDrop) {
  // loss(all included) <= loss(half included) <= loss(none included)
  auto loss_with = [&](std::size_t included_count) {
    std::vector<ComponentOutcome> outcomes(service_->num_components());
    for (std::size_t c = 0; c < outcomes.size(); ++c)
      outcomes[c].included = c < included_count;
    const auto res = service_->evaluate(
        workload_.requests, workload_.actuals,
        core::Technique::kPartialExecution,
        [&outcomes](std::size_t) { return outcomes; });
    return res.loss_pct;
  };
  const double all = loss_with(service_->num_components());
  const double none = loss_with(0);
  EXPECT_DOUBLE_EQ(all, 0.0);
  EXPECT_GT(none, 50.0);  // skipping everything devastates accuracy
  const double half = loss_with(service_->num_components() / 2 + 1);
  EXPECT_LE(all, half);
  EXPECT_LE(half, none);
}

TEST_F(ServiceTest, AccuracyTraderBeatsPartialUnderOverload) {
  // Paper's overload regime: all components blow the deadline, so partial
  // execution returns nothing, while AccuracyTrader still answers from the
  // synopses (plus whatever sets fit — here just one per component).
  std::vector<ComponentOutcome> partial_outcomes(service_->num_components());
  for (auto& o : partial_outcomes) o.included = false;
  const auto partial = service_->evaluate(
      workload_.requests, workload_.actuals,
      core::Technique::kPartialExecution,
      [&partial_outcomes](std::size_t) { return partial_outcomes; });

  ComponentOutcome at_outcome;
  at_outcome.sets = 1;
  const auto at = service_->evaluate_uniform(workload_.requests,
                                             workload_.actuals,
                                             core::Technique::kAccuracyTrader,
                                             at_outcome);
  EXPECT_LT(at.loss_pct * 5.0, partial.loss_pct);
  EXPECT_LT(at.loss_pct, 10.0);  // synopsis answers are already close
}

TEST_F(ServiceTest, MoreSetsNeverHurtOnAverage) {
  ComponentOutcome few;
  few.sets = 0;
  ComponentOutcome many;
  many.sets = 4;
  const auto r_few = service_->evaluate_uniform(
      workload_.requests, workload_.actuals,
      core::Technique::kAccuracyTrader, few);
  const auto r_many = service_->evaluate_uniform(
      workload_.requests, workload_.actuals,
      core::Technique::kAccuracyTrader, many);
  EXPECT_LE(r_many.loss_pct, r_few.loss_pct + 1.0);
}

TEST_F(ServiceTest, OutcomeSizeMismatchThrows) {
  const auto& req = workload_.requests[0];
  std::vector<ComponentOutcome> wrong(1);
  EXPECT_THROW(
      service_->predict(req, core::Technique::kAccuracyTrader, wrong),
      std::invalid_argument);
}

}  // namespace
}  // namespace at::reco
