// Epoch-ownership suite (ISSUE 8): the EpochSlot primitive, the snapshot
// swap under concurrent readers (run under TSan in CI), query-cache
// staleness re-annotation at publish time, and the DLTA delta artifacts a
// warm standby tails.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/artifact.h"
#include "common/epoch.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "services/search/component.h"
#include "services/search/query_cache.h"
#include "services/search/service.h"
#include "synopsis/delta.h"
#include "workload/corpus.h"

namespace at {
namespace {

namespace fp = common::failpoint;

// ---------------------------------------------------------------------------
// EpochSlot primitive
// ---------------------------------------------------------------------------

/// Torn-read detector: both halves must always agree.
struct Payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class EpochSlotTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

TEST_F(EpochSlotTest, AcquireBeforeFirstPublishIsNull) {
  common::EpochSlot<int> slot;
  EXPECT_EQ(slot.acquire(), nullptr);
  EXPECT_EQ(slot.version(), 0u);
  const auto s = slot.stats();
  EXPECT_EQ(s.published, 0u);
  EXPECT_EQ(s.retired, 0u);
  EXPECT_EQ(s.live, 0u);
}

TEST_F(EpochSlotTest, PublishNullThrows) {
  common::EpochSlot<int> slot;
  EXPECT_THROW(slot.publish(nullptr), std::invalid_argument);
}

TEST_F(EpochSlotTest, PublishAdvancesVersionAndAcquireSees) {
  common::EpochSlot<int> slot;
  slot.publish(std::make_unique<const int>(41));
  EXPECT_EQ(slot.version(), 1u);
  ASSERT_NE(slot.acquire(), nullptr);
  EXPECT_EQ(*slot.acquire(), 41);
  slot.publish(std::make_unique<const int>(42));
  EXPECT_EQ(slot.version(), 2u);
  EXPECT_EQ(*slot.acquire(), 42);
}

TEST_F(EpochSlotTest, PinSurvivesPublishAndRetiresOnDrop) {
  common::EpochSlot<int> slot;
  slot.publish(std::make_unique<const int>(1));
  std::shared_ptr<const int> pin = slot.acquire();
  slot.publish(std::make_unique<const int>(2));
  // The pinned epoch is retired-but-alive: still readable, not yet freed.
  EXPECT_EQ(*pin, 1);
  EXPECT_EQ(slot.stats().retired, 0u);
  EXPECT_EQ(slot.stats().live, 2u);
  pin.reset();  // the last pin performs the retire
  EXPECT_EQ(slot.stats().retired, 1u);
  EXPECT_EQ(slot.stats().live, 1u);
}

TEST_F(EpochSlotTest, UnpinnedPublishesRetireEagerly) {
  common::EpochSlot<int> slot;
  for (int i = 0; i < 10; ++i) slot.publish(std::make_unique<const int>(i));
  const auto s = slot.stats();
  EXPECT_EQ(s.published, 10u);
  EXPECT_EQ(s.retired, 9u);  // everything but the current epoch drained
  EXPECT_EQ(s.live, 1u);
}

TEST_F(EpochSlotTest, VersionWrapKeepsFreshnessEqualityDistinct) {
  common::EpochSlot<int> slot;
  slot.publish(std::make_unique<const int>(0));
  slot.set_version_for_test(std::numeric_limits<std::uint64_t>::max());
  const std::uint64_t before = slot.version();
  slot.publish(std::make_unique<const int>(1));
  EXPECT_EQ(slot.version(), 0u);  // wrapped
  // Equality-based freshness: the wrapped version still differs from the
  // pre-wrap token, so a cached answer stamped `before` reads as stale.
  EXPECT_NE(slot.version(), before);
  slot.publish(std::make_unique<const int>(2));
  EXPECT_EQ(slot.version(), 1u);
  EXPECT_EQ(slot.stats().published, 3u);  // publish count is unaffected
}

TEST_F(EpochSlotTest, PublishFailpointAbortsAndKeepsPreviousEpochLive) {
  common::EpochSlot<int> slot;
  slot.publish(std::make_unique<const int>(7));
  fp::set("epoch.publish", "error");
  EXPECT_THROW(slot.publish(std::make_unique<const int>(8)),
               fp::FailpointError);
  fp::clear_all();
  // The failed publish left everything untouched.
  EXPECT_EQ(slot.version(), 1u);
  EXPECT_EQ(*slot.acquire(), 7);
  EXPECT_EQ(slot.stats().published, 1u);
  slot.publish(std::make_unique<const int>(8));
  EXPECT_EQ(*slot.acquire(), 8);
}

TEST_F(EpochSlotTest, RetireFailpointNeverThrowsOutOfDeleter) {
  common::EpochSlot<int> slot;
  slot.publish(std::make_unique<const int>(1));
  fp::set("epoch.retire", "error");
  // The retire deleter uses the non-throwing check(): an armed error must
  // not propagate out of the shared_ptr release.
  EXPECT_NO_THROW(slot.publish(std::make_unique<const int>(2)));
  EXPECT_EQ(slot.stats().retired, 1u);
}

TEST_F(EpochSlotTest, PinOutlivesSlotShutdownMidSwap) {
  std::shared_ptr<const int> pin;
  {
    common::EpochSlot<int> slot;
    slot.publish(std::make_unique<const int>(99));
    pin = slot.acquire();
    slot.publish(std::make_unique<const int>(100));
  }  // slot destroyed while the old epoch is still pinned
  EXPECT_EQ(*pin, 99);
  pin.reset();  // retires into the counter kept alive by the deleter
}

TEST_F(EpochSlotTest, SwapStressReadersNeverBlockOrTear) {
  common::EpochSlot<Payload> slot;
  {
    auto p = std::make_unique<Payload>();
    p->a = p->b = 0;
    slot.publish(std::unique_ptr<const Payload>(std::move(p)));
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> pins_across_publish{0};
  constexpr int kReaders = 4;
  constexpr int kPublishes = 2000;

  // Each reader keeps going until it has a minimum sample count even if
  // the writer finishes all publishes before it gets scheduled (possible
  // on a loaded single-core box — publishes are just pointer swaps).
  constexpr std::uint64_t kMinReadsPerReader = 200;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire) ||
             local < kMinReadsPerReader) {
        const std::uint64_t v_before = slot.version();
        const auto pin = slot.acquire();
        ASSERT_NE(pin, nullptr);
        // Never torn: both halves written before publish, read after.
        ASSERT_EQ(pin->a, pin->b);
        if (slot.version() != v_before)
          pins_across_publish.fetch_add(1, std::memory_order_relaxed);
        ++local;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t i = 1; i <= kPublishes; ++i) {
    auto p = std::make_unique<Payload>();
    p->a = p->b = i;
    slot.publish(std::unique_ptr<const Payload>(std::move(p)));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  const auto s = slot.stats();
  EXPECT_EQ(s.published, kPublishes + 1u);
  // Queries never blocked on retraining: with all pins dropped, every old
  // epoch has drained — nothing was stuck behind a reader.
  EXPECT_EQ(s.retired, s.published - 1u);
  EXPECT_EQ(s.live, 1u);
  EXPECT_GT(reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Component- and service-level swap behavior
// ---------------------------------------------------------------------------

synopsis::BuildConfig small_build_config() {
  synopsis::BuildConfig cfg;
  cfg.svd.rank = 2;
  cfg.svd.epochs_per_dim = 20;
  cfg.size_ratio = 10.0;
  return cfg;
}

workload::CorpusConfig small_corpus_config() {
  workload::CorpusConfig cfg;
  cfg.num_components = 2;
  cfg.docs_per_component = 80;
  cfg.vocab_size = 300;
  cfg.num_topics = 6;
  cfg.topic_vocab = 30;
  cfg.seed = 11;
  return cfg;
}

synopsis::UpdateBatch make_batch(workload::CorpusGen& gen, common::Rng& rng,
                                 std::size_t adds, std::size_t changes,
                                 std::size_t rows) {
  synopsis::UpdateBatch batch;
  for (std::size_t i = 0; i < adds; ++i)
    batch.added.push_back(gen.sample_doc(rng));
  for (std::size_t i = 0; i < changes; ++i)
    batch.changed.emplace_back(
        static_cast<std::uint32_t>(rng.uniform_index(rows)),
        gen.sample_doc(rng));
  return batch;
}

TEST(SearchComponentEpochs, ConcurrentQueriesNeverBlockOnUpdates) {
  auto cfg = small_corpus_config();
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(8);
  const std::size_t rows = wl.shards[0].rows();
  search::SearchComponent comp(std::move(wl.shards[0]), 0,
                               small_build_config());
  const std::uint64_t initial_version = comp.epoch_version();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries_done{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load(std::memory_order_acquire)) {
        // One pinned snapshot per request: analyze and the stage-1 member
        // listing must come from the same epoch.
        const auto snap = comp.snapshot();
        const auto& q = wl.queries[(t + queries_done.load()) %
                                   wl.queries.size()];
        const auto work = snap->analyze(q);
        ASSERT_EQ(work.scored_by_group.size(), snap->num_groups());
        if (snap->num_groups() > 0) {
          (void)snap->group_member_docs(0);
        }
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr int kUpdates = 12;
  common::Rng rng(99);
  for (int u = 0; u < kUpdates; ++u) {
    (void)comp.update(make_batch(gen, rng, 2, 2, rows));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(comp.epoch_version(), initial_version + kUpdates);
  const auto s = comp.epoch_stats();
  EXPECT_EQ(s.published, initial_version + kUpdates);
  // All pins dropped: every superseded epoch drained. This is the
  // "queries never block on retraining, retraining never blocks on
  // queries" assertion — a blocked reader would pin an epoch forever.
  EXPECT_EQ(s.retired, s.published - 1u);
  EXPECT_EQ(s.live, 1u);
  EXPECT_GT(queries_done.load(), 0u);
}

TEST(SearchServiceEpochs, DataVersionAdvancesAndCacheStampsStayConsistent) {
  auto cfg = small_corpus_config();
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(6);
  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto docs = shard.rows();
    comps.emplace_back(std::move(shard), base, small_build_config());
    base += docs;
  }
  search::SearchService service(std::move(comps), 10);
  service.enable_query_cache(64);

  const std::uint64_t v0 = service.data_version();
  const auto before = service.exact_topk(wl.queries[0]);
  common::Rng rng(5);
  (void)service.update_component(0, make_batch(gen, rng, 3, 0, 10));
  EXPECT_GT(service.data_version(), v0);
  // Cache was invalidated by the update; the fresh answer matches a cold
  // recompute bit-for-bit.
  const auto a = service.exact_topk(wl.queries[0]);
  const auto b = service.exact_topk(wl.queries[0]);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc, b[i].doc);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
  const auto es = service.epoch_stats();
  EXPECT_EQ(es.retired, es.published - service.num_components());
}

TEST(SearchServiceEpochs, ConcurrentQueryUpdateStress) {
  auto cfg = small_corpus_config();
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(8);
  std::vector<std::size_t> shard_rows;
  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto docs = shard.rows();
    shard_rows.push_back(docs);
    comps.emplace_back(std::move(shard), base, small_build_config());
    base += docs;
  }
  search::SearchService service(std::move(comps), 10);
  service.enable_query_cache(64);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries_done{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      common::Rng qrng(t * 31 + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const auto& q =
            wl.queries[qrng.uniform_index(wl.queries.size())];
        const auto top = service.exact_topk(q);
        // Merged answers stay well-formed across swaps: sorted, unique.
        for (std::size_t i = 1; i < top.size(); ++i)
          ASSERT_NE(top[i - 1].doc, top[i].doc);
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  common::Rng rng(7);
  for (int u = 0; u < 8; ++u) {
    const std::size_t c = u % service.num_components();
    (void)service.update_component(
        c, make_batch(gen, rng, 2, 1, shard_rows[c]));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_GT(queries_done.load(), 0u);
  const auto es = service.epoch_stats();
  // One live epoch per component once all pins drop.
  EXPECT_EQ(es.live, service.num_components());
  EXPECT_EQ(es.retired, es.published - service.num_components());
}

// ---------------------------------------------------------------------------
// Query-cache staleness at publish time
// ---------------------------------------------------------------------------

TEST(QueryCacheEpochs, MarkStaleEpochsAnnotatesAndPenalizesOnce) {
  search::QueryCache cache(8, 1 << 20);
  const std::vector<search::ScoredDoc> docs{{1.0, 1}, {0.5, 2}};
  cache.insert({1, 2}, docs, search::ResultMeta{0.0, 5, false});
  cache.insert({3, 4}, docs, search::ResultMeta{2.0, 6, false});
  cache.insert({5, 6}, docs, search::ResultMeta{0.0, 7, false});

  // Publish moved the world to epoch 7: entries at 5 and 6 go stale.
  EXPECT_EQ(cache.mark_stale_epochs(7, 10.0), 2u);

  search::ResultMeta meta;
  std::vector<search::ScoredDoc> out;
  ASSERT_TRUE(cache.lookup({1, 2}, &out, &meta));
  EXPECT_TRUE(meta.stale);
  EXPECT_DOUBLE_EQ(meta.loss_pct, 10.0);
  ASSERT_TRUE(cache.lookup({3, 4}, &out, &meta));
  EXPECT_TRUE(meta.stale);
  EXPECT_DOUBLE_EQ(meta.loss_pct, 12.0);  // penalty on top of recorded loss
  ASSERT_TRUE(cache.lookup({5, 6}, &out, &meta));
  EXPECT_FALSE(meta.stale);  // current epoch stays fresh
  EXPECT_DOUBLE_EQ(meta.loss_pct, 0.0);

  // Idempotent: already-stale entries are not re-penalized.
  EXPECT_EQ(cache.mark_stale_epochs(8, 10.0), 1u);  // only the epoch-7 one
  ASSERT_TRUE(cache.lookup({1, 2}, &out, &meta));
  EXPECT_DOUBLE_EQ(meta.loss_pct, 10.0);
  EXPECT_EQ(cache.stats().stale_marks, 3u);
}

// ---------------------------------------------------------------------------
// DLTA delta artifacts
// ---------------------------------------------------------------------------

/// Frozen recipe for the checked-in golden (do not change): formula-based
/// rows mixing integral, fractional and >255 values so the codec exception
/// paths are inside the golden bytes.
synopsis::DeltaArtifact golden_delta() {
  synopsis::DeltaArtifact d;
  d.component = 2;
  d.from_version = 41;
  d.to_version = 42;
  for (std::uint32_t r = 0; r < 3; ++r) {
    synopsis::SparseVector row;
    for (std::uint32_t k = 0; k < 4; ++k) {
      double val = static_cast<double>((r + 1) * (k + 2));
      if (k == 1) val += 0.5;       // fractional -> codec exception
      if (k == 2) val = 260.0 + r;  // > 255 -> codec exception
      row.emplace_back(r * 3 + k * 5, val);
    }
    d.batch.added.push_back(std::move(row));
  }
  for (std::uint32_t r = 0; r < 2; ++r) {
    synopsis::SparseVector row;
    row.emplace_back(r, 1.0);
    row.emplace_back(r + 7, static_cast<double>(r) + 3.0);
    d.batch.changed.emplace_back(10 + r, std::move(row));
  }
  return d;
}

void expect_delta_eq(const synopsis::DeltaArtifact& a,
                     const synopsis::DeltaArtifact& b) {
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.from_version, b.from_version);
  EXPECT_EQ(a.to_version, b.to_version);
  ASSERT_EQ(a.batch.added.size(), b.batch.added.size());
  for (std::size_t i = 0; i < a.batch.added.size(); ++i)
    EXPECT_EQ(a.batch.added[i], b.batch.added[i]);
  ASSERT_EQ(a.batch.changed.size(), b.batch.changed.size());
  for (std::size_t i = 0; i < a.batch.changed.size(); ++i) {
    EXPECT_EQ(a.batch.changed[i].first, b.batch.changed[i].first);
    EXPECT_EQ(a.batch.changed[i].second, b.batch.changed[i].second);
  }
}

TEST(DeltaArtifact, RoundTrip) {
  const auto d = golden_delta();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  synopsis::save_delta(ss, d);
  const auto loaded = synopsis::load_delta(ss);
  expect_delta_eq(d, loaded);
}

TEST(DeltaArtifact, EmptyBatchRoundTrips) {
  synopsis::DeltaArtifact d;
  d.component = 0;
  d.from_version = 1;
  d.to_version = 2;
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  synopsis::save_delta(ss, d);
  const auto loaded = synopsis::load_delta(ss);
  expect_delta_eq(d, loaded);
}

TEST(DeltaArtifact, NonAdvancingIntervalRejected) {
  synopsis::DeltaArtifact d = golden_delta();
  d.from_version = d.to_version;
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  synopsis::save_delta(ss, d);
  EXPECT_THROW(synopsis::load_delta(ss), common::ArtifactError);
}

TEST(DeltaArtifact, GoldenBytesArePinned) {
  std::ostringstream os(std::ios::binary);
  synopsis::save_delta(os, golden_delta());
  const std::string bytes = os.str();
  const std::string path =
      std::string(AT_TEST_DATA_DIR) + "/golden/atac_delta_v1.bin";
  if (std::getenv("AT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << "could not regenerate " << path;
  }
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good()) << "missing golden " << path
                         << " (regenerate with AT_REGEN_GOLDEN=1)";
  std::ostringstream disk;
  disk << is.rdbuf();
  EXPECT_TRUE(bytes == disk.str())
      << "DLTA writer output drifted from the checked-in golden — if "
      << "intentional, bump the kind version and regenerate";
  // And the golden still loads back to the fixture.
  std::istringstream read_back(disk.str(), std::ios::binary);
  expect_delta_eq(golden_delta(), synopsis::load_delta(read_back));
}

TEST(DeltaArtifact, TruncationAtEveryPrefixThrowsCleanly) {
  std::ostringstream os(std::ios::binary);
  synopsis::save_delta(os, golden_delta());
  const std::string bytes = os.str();
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::istringstream is(bytes.substr(0, n), std::ios::binary);
    EXPECT_THROW(synopsis::load_delta(is), common::ArtifactError) << n;
  }
}

TEST(DeltaArtifact, BitFlipFuzzNeverCrashesAndMostlyDetects) {
  std::ostringstream os(std::ios::binary);
  synopsis::save_delta(os, golden_delta());
  const std::string bytes = os.str();
  common::Rng rng(20160816);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = bytes;
    const std::size_t pos = rng.uniform_index(corrupt.size());
    corrupt[pos] = static_cast<char>(
        corrupt[pos] ^ static_cast<char>(1 << rng.uniform_index(8)));
    std::istringstream is(corrupt, std::ios::binary);
    try {
      const auto loaded = synopsis::load_delta(is);
      // A flip inside f64 payload bits can survive the CRC only by
      // landing in a value; structure must still be intact.
      EXPECT_EQ(loaded.batch.added.size(), golden_delta().batch.added.size());
    } catch (const common::ArtifactError&) {
      // detected: the expected outcome for nearly all flips
    }
  }
}

TEST(DeltaArtifact, WriteFailpointAbortsBeforeAnyBytes) {
  fp::clear_all();
  fp::set("artifact.delta_write", "error");
  std::ostringstream os(std::ios::binary);
  EXPECT_THROW(synopsis::save_delta(os, golden_delta()),
               common::ArtifactError);
  EXPECT_TRUE(os.str().empty());  // no half-framed container
  fp::clear_all();
  synopsis::save_delta(os, golden_delta());
  EXPECT_FALSE(os.str().empty());
}

// ---------------------------------------------------------------------------
// Delta stream end to end: publish emits, standby replays to identical state
// ---------------------------------------------------------------------------

TEST(DeltaStream, SinkFiresPerPublishInVersionOrderAndReplayConverges) {
  auto cfg = small_corpus_config();
  cfg.num_components = 1;
  workload::CorpusGen gen(cfg);
  auto wl = gen.generate(4);
  const std::size_t rows = wl.shards[0].rows();
  auto shard_copy = wl.shards[0];  // standby starts from the same snapshot
  search::SearchComponent live(std::move(wl.shards[0]), 0,
                               small_build_config());
  search::SearchComponent standby(std::move(shard_copy), 0,
                                  small_build_config());

  std::vector<synopsis::DeltaArtifact> stream;
  live.set_delta_sink([&stream](const synopsis::UpdateBatch& batch,
                                std::uint64_t from, std::uint64_t to) {
    synopsis::DeltaArtifact d;
    d.component = 0;
    d.from_version = from;
    d.to_version = to;
    d.batch = batch;
    // Round-trip through the wire format: the standby tails files, not
    // in-process batches.
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    synopsis::save_delta(ss, d);
    stream.push_back(synopsis::load_delta(ss));
  });

  common::Rng rng(3);
  constexpr int kPublishes = 4;
  for (int i = 0; i < kPublishes; ++i)
    (void)live.update(make_batch(gen, rng, 2, 1, rows));

  ASSERT_EQ(stream.size(), static_cast<std::size_t>(kPublishes));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].to_version, stream[i].from_version + 1);
    if (i > 0) EXPECT_EQ(stream[i].from_version, stream[i - 1].to_version);
  }

  // Standby replay: applying the tailed batches in order reproduces the
  // live component bit-for-bit (deterministic SynopsisUpdater::apply).
  for (const auto& d : stream) {
    ASSERT_EQ(standby.epoch_version(), d.from_version);
    (void)standby.update(d.batch);
  }
  std::ostringstream live_bytes(std::ios::binary),
      standby_bytes(std::ios::binary);
  live.save(live_bytes);
  standby.save(standby_bytes);
  EXPECT_TRUE(live_bytes.str() == standby_bytes.str())
      << "replayed standby diverged from the live component";
}

}  // namespace
}  // namespace at
