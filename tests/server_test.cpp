// Serving front end tests: wire protocol round-trips and malformed-frame
// fuzzing, frame reassembly, admission control, the degradation ladder
// under injected faults (dead component scans, artifact errors, socket
// resets, short writes), cache staleness via data epochs, component
// reloads, and shutdown under load. The fault-injection cases all assert
// the same contract: degraded-or-error, never a crash, and full recovery
// once the failpoint clears.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/artifact.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/sharded_executor.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/replay.h"
#include "server/server.h"
#include "server/standby.h"
#include "services/recommender/service.h"
#include "services/search/service.h"
#include "synopsis/delta.h"
#include "workload/corpus.h"
#include "workload/ratings.h"

namespace at::server {
namespace {

namespace fp = at::common::failpoint;
using protocol::Op;
using protocol::Request;
using protocol::Response;
using protocol::Status;
using protocol::Tier;

// ---------------------------------------------------------------------------
// Shared serving fixture (built once; tests start their own Server on an
// ephemeral port against it)
// ---------------------------------------------------------------------------

workload::CorpusConfig test_corpus_config() {
  workload::CorpusConfig cfg;
  cfg.num_components = 4;
  cfg.docs_per_component = 120;
  cfg.vocab_size = 1500;
  cfg.num_topics = 12;
  cfg.seed = 20160816;
  return cfg;
}

struct ServingFixture {
  std::unique_ptr<common::ShardedExecutor> exec;
  std::unique_ptr<search::SearchService> service;
  std::vector<search::SearchRequest> queries;
};

ServingFixture& fixture() {
  static ServingFixture fx = [] {
    ServingFixture f;
    workload::CorpusGen gen(test_corpus_config());
    auto wl = gen.generate(24);
    synopsis::BuildConfig bcfg;
    bcfg.svd.rank = 2;
    bcfg.svd.epochs_per_dim = 40;
    bcfg.size_ratio = 10.0;
    std::vector<search::SearchComponent> comps;
    std::uint64_t base = 0;
    for (auto& shard : wl.shards) {
      const auto n = shard.rows();
      comps.emplace_back(std::move(shard), base, bcfg);
      base += n;
    }
    f.exec = std::make_unique<common::ShardedExecutor>();
    f.service =
        std::make_unique<search::SearchService>(std::move(comps), 10);
    f.service->set_executor(f.exec.get());
    f.queries = std::move(wl.queries);
    return f;
  }();
  return fx;
}

ServerConfig test_server_config() {
  ServerConfig cfg;
  auto& fx = fixture();
  for (std::size_t i = 0; i < 4; ++i)
    cfg.calibration_queries.push_back(fx.queries[i]);
  return cfg;
}

ClientConfig client_config(std::uint16_t port, std::size_t retries = 3) {
  ClientConfig cfg;
  cfg.port = port;
  cfg.max_retries = retries;
  cfg.backoff_base_ms = 1.0;
  cfg.backoff_cap_ms = 20.0;
  return cfg;
}

/// Failpoints are process-global: every server test starts and ends clean.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

int connect_raw(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// Reads until the peer closes; returns everything received.
std::vector<std::uint8_t> drain(int fd) {
  std::vector<std::uint8_t> all;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r <= 0) break;
    all.insert(all.end(), buf, buf + r);
  }
  return all;
}

// ---------------------------------------------------------------------------
// Protocol round-trips
// ---------------------------------------------------------------------------

TEST(Protocol, SearchRequestRoundTrip) {
  Request req;
  req.request_id = 0xDEADBEEFCAFE;
  req.op = Op::kSearch;
  req.deadline_ms = 75;
  req.k = 5;
  req.terms = {3, 1, 4, 1, 5, 9};
  const auto frame = protocol::encode_request(req);
  ASSERT_GT(frame.size(), 4u);
  Request out;
  std::string err;
  ASSERT_TRUE(
      protocol::decode_request(frame.data() + 4, frame.size() - 4, &out, &err))
      << err;
  EXPECT_EQ(out.request_id, req.request_id);
  EXPECT_EQ(out.op, Op::kSearch);
  EXPECT_EQ(out.deadline_ms, 75u);
  EXPECT_EQ(out.k, 5u);
  EXPECT_EQ(out.terms, req.terms);
}

TEST(Protocol, RecommendRequestRoundTrip) {
  Request req;
  req.request_id = 7;
  req.op = Op::kRecommend;
  req.target_item = 42;
  req.ratings = {{1, 4.5}, {9, 2.0}};
  const auto frame = protocol::encode_request(req);
  Request out;
  std::string err;
  ASSERT_TRUE(
      protocol::decode_request(frame.data() + 4, frame.size() - 4, &out, &err))
      << err;
  EXPECT_EQ(out.op, Op::kRecommend);
  EXPECT_EQ(out.target_item, 42u);
  ASSERT_EQ(out.ratings.size(), 2u);
  EXPECT_EQ(out.ratings[1].first, 9u);
  EXPECT_DOUBLE_EQ(out.ratings[1].second, 2.0);
}

TEST(Protocol, UpdateRequestRoundTripAndCaps) {
  Request req;
  req.request_id = 9;
  req.op = Op::kUpdate;
  req.deadline_ms = 500;
  req.update_component = 3;
  req.update_adds = 17;
  req.update_changes = 5;
  req.update_seed = 0xFEEDFACE12345678ULL;
  const auto frame = protocol::encode_request(req);
  Request out;
  std::string err;
  ASSERT_TRUE(
      protocol::decode_request(frame.data() + 4, frame.size() - 4, &out, &err))
      << err;
  EXPECT_EQ(out.op, Op::kUpdate);
  EXPECT_EQ(out.update_component, 3u);
  EXPECT_EQ(out.update_adds, 17u);
  EXPECT_EQ(out.update_changes, 5u);
  EXPECT_EQ(out.update_seed, 0xFEEDFACE12345678ULL);

  // Forged row counts are rejected before any retraining work.
  req.update_adds = protocol::kMaxUpdateRows + 1;
  const auto big = protocol::encode_request(req);
  EXPECT_FALSE(
      protocol::decode_request(big.data() + 4, big.size() - 4, &out, &err));

  // The JSON report response round-trips like a stats body.
  Response resp;
  resp.request_id = 9;
  resp.status = Status::kOk;
  resp.tier = Tier::kNone;
  resp.op = Op::kUpdate;
  resp.text = "{\"points_added\": 17}";
  const auto rframe = protocol::encode_response(resp);
  Response rout;
  rout.op = Op::kUpdate;
  ASSERT_TRUE(protocol::decode_response(rframe.data() + 4, rframe.size() - 4,
                                        &rout, &err))
      << err;
  EXPECT_EQ(rout.text, resp.text);
}

TEST(Protocol, ResponseRoundTripAllStatuses) {
  {
    Response resp;
    resp.request_id = 11;
    resp.op = Op::kSearch;
    resp.status = Status::kOk;
    resp.tier = Tier::kSynopsis;
    resp.est_loss_pct = 17.5;
    resp.server_ms = 3.25;
    resp.docs = {{2.0, 10}, {1.0, 4}};
    const auto frame = protocol::encode_response(resp);
    Response out;
    out.op = Op::kSearch;
    std::string err;
    ASSERT_TRUE(protocol::decode_response(frame.data() + 4, frame.size() - 4,
                                          &out, &err))
        << err;
    EXPECT_EQ(out.tier, Tier::kSynopsis);
    EXPECT_DOUBLE_EQ(out.est_loss_pct, 17.5);
    ASSERT_EQ(out.docs.size(), 2u);
    EXPECT_EQ(out.docs[0].doc, 10u);
  }
  {
    Response resp;
    resp.op = Op::kSearch;
    resp.status = Status::kShed;
    resp.retry_after_ms = 120;
    const auto frame = protocol::encode_response(resp);
    Response out;
    out.op = Op::kSearch;
    std::string err;
    ASSERT_TRUE(protocol::decode_response(frame.data() + 4, frame.size() - 4,
                                          &out, &err));
    EXPECT_EQ(out.status, Status::kShed);
    EXPECT_EQ(out.retry_after_ms, 120u);
    EXPECT_TRUE(out.docs.empty());
  }
  {
    Response resp;
    resp.op = Op::kStats;
    resp.status = Status::kError;
    resp.text = "boom";
    const auto frame = protocol::encode_response(resp);
    Response out;
    out.op = Op::kStats;
    std::string err;
    ASSERT_TRUE(protocol::decode_response(frame.data() + 4, frame.size() - 4,
                                          &out, &err));
    EXPECT_EQ(out.status, Status::kError);
    EXPECT_EQ(out.text, "boom");
  }
}

// ---------------------------------------------------------------------------
// Malformed-frame fuzzing (the decoder is the trust boundary)
// ---------------------------------------------------------------------------

TEST(Protocol, RejectsBadVersionOpFlagsAndCounts) {
  Request req;
  req.op = Op::kSearch;
  req.terms = {1, 2, 3};
  auto frame = protocol::encode_request(req);
  std::string err;
  Request out;
  auto body = [&frame](std::size_t off) { return frame.data() + 4 + off; };
  const std::size_t n = frame.size() - 4;

  frame[4] = 99;  // version
  EXPECT_FALSE(protocol::decode_request(body(0), n, &out, &err));
  frame[4] = protocol::kVersion;
  frame[5] = 0;  // op 0 is invalid
  EXPECT_FALSE(protocol::decode_request(body(0), n, &out, &err));
  frame[5] = static_cast<std::uint8_t>(Op::kSearch);
  frame[6] = 1;  // flags must be 0
  EXPECT_FALSE(protocol::decode_request(body(0), n, &out, &err));
  frame[6] = 0;

  // Forged term count pointing past the payload.
  auto forged = protocol::encode_request(req);
  const std::size_t count_off = 4 + 1 + 1 + 2 + 8 + 4 + 4;  // ... | k | nterms
  const std::uint32_t huge = 1000000;
  std::memcpy(forged.data() + count_off, &huge, sizeof huge);
  EXPECT_FALSE(protocol::decode_request(forged.data() + 4, forged.size() - 4,
                                        &out, &err));

  // Trailing garbage after a valid body.
  auto padded = protocol::encode_request(req);
  padded.push_back(0xAB);
  EXPECT_FALSE(
      protocol::decode_request(padded.data() + 4, padded.size() - 4 + 1, &out,
                               &err));
}

TEST(Protocol, AllPrefixTruncationsRejectCleanly) {
  Request req;
  req.op = Op::kSearch;
  req.deadline_ms = 50;
  req.terms = {10, 20, 30, 40};
  const auto frame = protocol::encode_request(req);
  const std::size_t n = frame.size() - 4;
  for (std::size_t len = 0; len < n; ++len) {
    Request out;
    std::string err;
    EXPECT_FALSE(protocol::decode_request(frame.data() + 4, len, &out, &err))
        << "prefix of length " << len << " decoded";
  }
  Request out;
  std::string err;
  EXPECT_TRUE(protocol::decode_request(frame.data() + 4, n, &out, &err));
}

TEST(Protocol, FuzzRandomBytesNeverCrash) {
  common::Rng rng(0xF422);
  std::vector<std::uint8_t> buf;
  for (int iter = 0; iter < 3000; ++iter) {
    buf.resize(rng.uniform_index(300));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    Request rout;
    Response pout;
    pout.op = static_cast<Op>(1 + rng.uniform_index(4));
    std::string err;
    (void)protocol::decode_request(buf.data(), buf.size(), &rout, &err);
    (void)protocol::decode_response(buf.data(), buf.size(), &pout, &err);
  }
}

TEST(Protocol, FrameBufferRejectsForgedLength) {
  protocol::FrameBuffer frames;
  const std::uint32_t huge = protocol::kMaxFrameBytes + 1;
  frames.append(reinterpret_cast<const std::uint8_t*>(&huge), 4);
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(frames.pull(&payload), protocol::FrameBuffer::Pull::kBad);
}

TEST(Protocol, FrameBufferReassemblesDrippedFrames) {
  Request a, b;
  a.op = Op::kPing;
  a.request_id = 1;
  b.op = Op::kSearch;
  b.request_id = 2;
  b.terms = {5, 6};
  auto bytes = protocol::encode_request(a);
  const auto fb = protocol::encode_request(b);
  bytes.insert(bytes.end(), fb.begin(), fb.end());

  protocol::FrameBuffer frames;
  std::vector<std::vector<std::uint8_t>> got;
  std::vector<std::uint8_t> payload;
  for (const std::uint8_t byte : bytes) {
    frames.append(&byte, 1);
    while (frames.pull(&payload) == protocol::FrameBuffer::Pull::kFrame)
      got.push_back(payload);
  }
  ASSERT_EQ(got.size(), 2u);
  Request out;
  std::string err;
  ASSERT_TRUE(protocol::decode_request(got[1].data(), got[1].size(), &out,
                                       &err));
  EXPECT_EQ(out.request_id, 2u);
  EXPECT_EQ(out.terms, b.terms);
}

// ---------------------------------------------------------------------------
// End-to-end serving
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ServesFullTierAndCachesRepeats) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));
  const auto& terms = fx.queries[10].terms;

  Response resp;
  std::string err;
  ASSERT_TRUE(client.search(terms, 1000, 10, &resp, &err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.tier, Tier::kFull);
  EXPECT_DOUBLE_EQ(resp.est_loss_pct, 0.0);
  EXPECT_FALSE(resp.docs.empty());
  const auto exact = fx.service->exact_topk(search::SearchRequest{terms});
  ASSERT_EQ(resp.docs.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_EQ(resp.docs[i].doc, exact[i].doc);

  Response again;
  ASSERT_TRUE(client.search(terms, 1000, 10, &again, &err)) << err;
  EXPECT_EQ(again.status, Status::kOk);
  EXPECT_EQ(again.tier, Tier::kCached);
  EXPECT_DOUBLE_EQ(again.est_loss_pct, 0.0);
  ASSERT_EQ(again.docs.size(), resp.docs.size());
  EXPECT_EQ(again.docs.front().doc, resp.docs.front().doc);

  const auto snap = srv.snapshot();
  EXPECT_EQ(snap.full.count, 1u);
  EXPECT_EQ(snap.cached.count, 1u);
  srv.stop();
}

TEST_F(ServerTest, PingAndStatsOps) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));
  std::string err;
  EXPECT_TRUE(client.ping(&err)) << err;
  std::string json;
  ASSERT_TRUE(client.stats(&json, &err)) << err;
  EXPECT_NE(json.find("\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"data_epoch\""), std::string::npos);
  srv.stop();
}

TEST_F(ServerTest, HonorsClientK) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));
  Response resp;
  std::string err;
  ASSERT_TRUE(client.search(fx.queries[11].terms, 1000, 3, &resp, &err));
  EXPECT_LE(resp.docs.size(), 3u);
  srv.stop();
}

TEST_F(ServerTest, MalformedFrameGetsBadRequestAndCleanClose) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();

  // Valid length prefix, garbage payload.
  const int fd = connect_raw(srv.port());
  std::uint8_t garbage[12];
  const std::uint32_t len = 8;
  std::memcpy(garbage, &len, 4);
  std::memset(garbage + 4, 0xFF, 8);
  ASSERT_EQ(::send(fd, garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));
  const auto reply = drain(fd);  // response then server-side close
  ::close(fd);
  ASSERT_GT(reply.size(), 4u);
  Response resp;
  resp.op = Op::kPing;
  std::string err;
  ASSERT_TRUE(protocol::decode_response(reply.data() + 4, reply.size() - 4,
                                        &resp, &err))
      << err;
  EXPECT_EQ(resp.status, Status::kBadRequest);
  EXPECT_EQ(srv.snapshot().bad_frames, 1u);

  // The process took no damage: a well-formed client still gets answers.
  Client client(client_config(srv.port()));
  EXPECT_TRUE(client.ping(&err)) << err;
  srv.stop();
}

TEST_F(ServerTest, RandomBytesOnSocketNeverKillTheServer) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  common::Rng rng(0xBAD);
  for (int conn = 0; conn < 8; ++conn) {
    const int fd = connect_raw(srv.port());
    std::uint8_t buf[256];
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    (void)::send(fd, buf, sizeof buf, 0);
    (void)drain(fd);
    ::close(fd);
  }
  Client client(client_config(srv.port()));
  std::string err;
  EXPECT_TRUE(client.ping(&err)) << err;
  srv.stop();
}

TEST_F(ServerTest, AdmissionControlShedsWithRetryAfter) {
  auto& fx = fixture();
  ServerConfig cfg = test_server_config();
  cfg.max_queue_per_group = 0;  // everything sheds at enqueue
  Server srv(*fx.service, nullptr, *fx.exec, cfg);
  srv.start();
  Client client(client_config(srv.port(), /*retries=*/1));
  Response resp;
  std::string err;
  EXPECT_FALSE(client.search(fx.queries[12].terms, 100, 10, &resp, &err));
  EXPECT_EQ(resp.status, Status::kShed);
  EXPECT_GT(resp.retry_after_ms, 0u);
  EXPECT_GE(client.stats_counters().sheds_seen, 2u);  // initial + retry
  EXPECT_GE(srv.snapshot().shed, 2u);
  srv.stop();
}

TEST_F(ServerTest, ClientIsSafeForConcurrentCalls) {
  // Regression (found by the thread-safety annotation pass): a Client
  // shared across threads used to race on fd_/frames_/stats_ — two
  // callers draining one socket could steal each other's response frames.
  // Calls now serialize on the client's internal mutex.
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        Response resp;
        std::string err;
        const auto& q = fx.queries[(t * 8 + i) % fx.queries.size()];
        if (client.search(q.terms, 2000, 10, &resp, &err) &&
            resp.status == Status::kOk)
          ok++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), 32);
  EXPECT_GE(client.stats_counters().calls, 32u);
  srv.stop();
}

// ---------------------------------------------------------------------------
// The ladder under injected faults
// ---------------------------------------------------------------------------

TEST_F(ServerTest, AllScansDeadFallsToSynopsisAndRecovers) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));
  const auto& terms = fx.queries[13].terms;

  fp::set("server.scan", "error");
  Response resp;
  std::string err;
  ASSERT_TRUE(client.search(terms, 1000, 10, &resp, &err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.tier, Tier::kSynopsis);
  EXPECT_GT(resp.est_loss_pct, 0.0);

  fp::clear_all();
  Response healed;
  ASSERT_TRUE(client.search(terms, 1000, 10, &healed, &err)) << err;
  EXPECT_EQ(healed.status, Status::kOk);
  EXPECT_EQ(healed.tier, Tier::kFull);
  EXPECT_DOUBLE_EQ(healed.est_loss_pct, 0.0);
  srv.stop();
}

TEST_F(ServerTest, OneComponentDeadYieldsMarkedPartialFullAnswer) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));

  fp::set("server.scan.c0", "error");  // kill component 0's group mid-query
  Response resp;
  std::string err;
  ASSERT_TRUE(client.search(fx.queries[14].terms, 1000, 10, &resp, &err))
      << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.tier, Tier::kFull);
  const double expected_loss =
      100.0 / static_cast<double>(fx.service->num_components());
  EXPECT_NEAR(resp.est_loss_pct, expected_loss, 1e-9);
  EXPECT_FALSE(resp.docs.empty());

  // Partial answers must not be cached as exact: the repeat after recovery
  // is a fresh full scan, not a poisoned cache hit.
  fp::clear_all();
  Response healed;
  ASSERT_TRUE(client.search(fx.queries[14].terms, 1000, 10, &healed, &err));
  EXPECT_EQ(healed.tier, Tier::kFull);
  EXPECT_DOUBLE_EQ(healed.est_loss_pct, 0.0);
  srv.stop();
}

TEST_F(ServerTest, StaleCacheServesWithPenaltyWhenAllRungsFail) {
  auto& fx = fixture();
  ServerConfig cfg = test_server_config();
  Server srv(*fx.service, nullptr, *fx.exec, cfg);
  srv.start();
  Client client(client_config(srv.port()));
  const auto& terms = fx.queries[15].terms;

  Response prime;
  std::string err;
  ASSERT_TRUE(client.search(terms, 1000, 10, &prime, &err)) << err;
  ASSERT_EQ(prime.tier, Tier::kFull);

  srv.bump_data_epoch();  // cache entry is now stale
  fp::set_many("server.scan=error;server.synopsis=error");
  Response resp;
  ASSERT_TRUE(client.search(terms, 1000, 10, &resp, &err)) << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.tier, Tier::kCached);
  EXPECT_NEAR(resp.est_loss_pct, cfg.stale_penalty_pct, 1e-9);
  EXPECT_EQ(resp.docs.size(), prime.docs.size());
  srv.stop();
}

TEST_F(ServerTest, NothingLeftSheds) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port(), /*retries=*/0));

  fp::set_many("server.scan=error;server.synopsis=error");
  // Terms no prior test cached: nothing on any rung.
  Response resp;
  std::string err;
  EXPECT_FALSE(
      client.search(fx.queries[16].terms, 1000, 10, &resp, &err));
  EXPECT_EQ(resp.status, Status::kShed);
  EXPECT_GT(resp.retry_after_ms, 0u);

  fp::clear_all();
  Response healed;
  ASSERT_TRUE(client.search(fx.queries[16].terms, 1000, 10, &healed, &err));
  EXPECT_EQ(healed.tier, Tier::kFull);
  srv.stop();
}

TEST_F(ServerTest, ShortWriteDropsConnectionAndClientRetries) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));

  fp::set("server.write", "short_write:x1");
  Response resp;
  std::string err;
  ASSERT_TRUE(client.search(fx.queries[17].terms, 1000, 10, &resp, &err))
      << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_GE(client.stats_counters().transport_errors, 1u);
  EXPECT_GE(client.stats_counters().reconnects, 1u);
  srv.stop();
}

TEST_F(ServerTest, InjectedReadErrorResetsConnectionOnly) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));

  fp::set("server.read", "error:x1");  // first read attempt drops the conn
  Response resp;
  std::string err;
  ASSERT_TRUE(client.search(fx.queries[18].terms, 1000, 10, &resp, &err))
      << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_GE(client.stats_counters().reconnects, 1u);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Reload, shutdown, replay
// ---------------------------------------------------------------------------

TEST_F(ServerTest, ReloadComponentBumpsEpochAndCorruptReloadIsRejected) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));
  const auto epoch0 = srv.snapshot().data_epoch;

  std::ostringstream os;
  fx.service->component(1).save(os);
  const std::string bytes = os.str();
  {
    std::istringstream is(bytes);
    srv.reload_search_component(1, is);
  }
  EXPECT_EQ(srv.snapshot().data_epoch, epoch0 + 1);

  // Corrupt (truncated) snapshot: structured failure, no state change,
  // serving continues.
  std::istringstream bad(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(srv.reload_search_component(1, bad), common::ArtifactError);
  EXPECT_EQ(srv.snapshot().data_epoch, epoch0 + 1);
  Response resp;
  std::string err;
  ASSERT_TRUE(client.search(fx.queries[19].terms, 1000, 10, &resp, &err))
      << err;
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.tier, Tier::kFull);
  srv.stop();
}

TEST_F(ServerTest, ShutdownUnderLoadAnswersOrResetsEveryCall) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  const std::uint16_t port = srv.port();

  std::atomic<bool> run{true};
  std::atomic<std::uint64_t> answered{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Client client(client_config(port, /*retries=*/0));
      std::size_t q = static_cast<std::size_t>(t);
      while (run.load()) {
        Response resp;
        std::string err;
        if (client.search(fixture().queries[q % 24].terms, 200, 10, &resp,
                          &err))
          answered.fetch_add(1);
        else
          failed.fetch_add(1);
        ++q;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  srv.stop();  // while clients are mid-flight
  run.store(false);
  for (auto& t : threads) t.join();
  EXPECT_GT(answered.load(), 0u);  // the server did real work before stop
  // No crash, no hang: reaching here with all threads joined is the test.
}

TEST_F(ServerTest, ReplayDriverRunsHeadless) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();

  ReplayConfig cfg;
  cfg.port = srv.port();
  cfg.num_clients = 3;
  cfg.requests_per_client = 15;
  cfg.deadline_ms = 1000;
  cfg.recommend_fraction = 0.0;
  cfg.corpus = test_corpus_config();
  const auto report = run_replay(cfg);
  EXPECT_EQ(report.requests, 45u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.server_errors, 0u);
  EXPECT_EQ(report.ok_full + report.ok_synopsis + report.ok_cached, 45u);
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"shed_rate\""), std::string::npos);
  srv.stop();
}

// ---------------------------------------------------------------------------
// Online retraining (kUpdate) — built on a PRIVATE service so the seeded
// retraining batches cannot perturb the shared fixture other tests query.
// ---------------------------------------------------------------------------

std::unique_ptr<search::SearchService> private_service() {
  workload::CorpusConfig ccfg = test_corpus_config();
  ccfg.num_components = 2;
  ccfg.docs_per_component = 80;
  workload::CorpusGen gen(ccfg);
  auto wl = gen.generate(8);
  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 2;
  bcfg.svd.epochs_per_dim = 40;
  bcfg.size_ratio = 10.0;
  std::vector<search::SearchComponent> comps;
  std::uint64_t base = 0;
  for (auto& shard : wl.shards) {
    const auto n = shard.rows();
    comps.emplace_back(std::move(shard), base, bcfg);
    base += n;
  }
  return std::make_unique<search::SearchService>(std::move(comps), 10);
}

TEST_F(ServerTest, UpdateOpRetrainsPublishesEpochAndMarksCacheStale) {
  auto service = private_service();
  auto& fx = fixture();
  ServerConfig cfg = test_server_config();
  Server srv(*service, nullptr, *fx.exec, cfg);
  srv.start();
  Client client(client_config(srv.port()));
  const auto& terms = fx.queries[2].terms;

  Response prime;
  std::string err;
  ASSERT_TRUE(client.search(terms, 1000, 10, &prime, &err)) << err;
  ASSERT_EQ(prime.tier, Tier::kFull);
  const std::uint64_t epoch0 = srv.snapshot().epoch_version;

  Response up;
  ASSERT_TRUE(client.update(0, 3, 2, 42, 5000, &up, &err)) << err;
  ASSERT_EQ(up.status, Status::kOk) << up.text;
  EXPECT_NE(up.text.find("\"points_added\": 3"), std::string::npos)
      << up.text;
  EXPECT_NE(up.text.find("\"to_epoch\""), std::string::npos);

  const auto snap = srv.snapshot();
  EXPECT_EQ(snap.updates, 1u);
  EXPECT_GT(snap.epoch_version, epoch0);
  EXPECT_GT(snap.epoch_published, 0u);
  EXPECT_EQ(snap.data_epoch, 0u);  // reload counter untouched by updates

  // The pre-update cached answer is stale now: with the scan rungs dead it
  // still serves, penalty folded in at publish time (not re-added).
  fp::set_many("server.scan=error;server.synopsis=error");
  Response stale;
  ASSERT_TRUE(client.search(terms, 1000, 10, &stale, &err)) << err;
  EXPECT_EQ(stale.tier, Tier::kCached);
  EXPECT_NEAR(stale.est_loss_pct, cfg.stale_penalty_pct, 1e-9);
  fp::clear_all();

  // And a live recompute works against the new epoch.
  Response fresh;
  ASSERT_TRUE(client.search(terms, 1000, 10, &fresh, &err)) << err;
  EXPECT_EQ(fresh.tier, Tier::kFull);

  // Out-of-range component: structured bad request, server keeps serving.
  Response bad;
  ASSERT_TRUE(client.update(99, 1, 0, 1, 5000, &bad, &err)) << err;
  EXPECT_EQ(bad.status, Status::kBadRequest);

  const auto json = srv.stats_json();
  EXPECT_NE(json.find("\"updates\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"epoch_version\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_published\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_retired\""), std::string::npos);
  srv.stop();
}

TEST_F(ServerTest, DeltaDirEmitsTailableArtifactsAndSurvivesWriteFaults) {
  auto service = private_service();
  auto& fx = fixture();
  ServerConfig cfg = test_server_config();
  std::string dir_template = ::testing::TempDir() + "at_delta_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template.data()), nullptr);
  cfg.delta_dir = dir_template;
  Server srv(*service, nullptr, *fx.exec, cfg);
  srv.start();
  Client client(client_config(srv.port()));

  Response up;
  std::string err;
  ASSERT_TRUE(client.update(1, 2, 1, 7, 5000, &up, &err)) << err;
  ASSERT_EQ(up.status, Status::kOk) << up.text;
  ASSERT_TRUE(client.update(1, 2, 1, 8, 5000, &up, &err)) << err;
  ASSERT_EQ(up.status, Status::kOk) << up.text;
  EXPECT_EQ(srv.snapshot().deltas_written, 2u);

  // The emitted files form a gapless tailable chain for the component,
  // under the zero-padded names the standby tailer sorts on. The first few
  // versions are the build-time publishes (initial epoch, global idf),
  // which emit no delta — scan a generous version range.
  std::vector<synopsis::DeltaArtifact> chain;
  for (std::uint64_t v = 1; v <= 32; ++v) {
    std::ifstream is(cfg.delta_dir + "/" + synopsis::delta_filename('c', 1, v),
                     std::ios::binary);
    if (!is.good()) continue;
    chain.push_back(synopsis::load_delta(is));
  }
  // No ".tmp" staging leftovers survive a successful write.
  for (const auto& entry :
       std::filesystem::directory_iterator(cfg.delta_dir)) {
    EXPECT_EQ(entry.path().extension(), ".atac") << entry.path();
  }
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].component, 1u);
  EXPECT_EQ(chain[1].from_version, chain[0].to_version);

  // An injected delta-write fault loses only the delta: the epoch is
  // already live and the update still reports success.
  fp::set("artifact.delta_write", "error");
  ASSERT_TRUE(client.update(1, 1, 0, 9, 5000, &up, &err)) << err;
  EXPECT_EQ(up.status, Status::kOk) << up.text;
  fp::clear_all();
  const auto snap = srv.snapshot();
  EXPECT_EQ(snap.deltas_written, 2u);
  EXPECT_EQ(snap.delta_failures, 1u);
  EXPECT_EQ(snap.updates, 3u);
  srv.stop();
}

TEST_F(ServerTest, RecommenderUpdateEmitsReplayableDelta) {
  // The recommender's delta sinks are wired at start() exactly like the
  // search ones (the PR-10 bugfix): a CF retraining batch must land on
  // disk as a loadable, replayable delta_r* artifact.
  workload::RatingConfig rcfg;
  rcfg.num_components = 2;
  rcfg.users_per_component = 60;
  rcfg.num_items = 64;
  rcfg.seed = 11;
  workload::RatingWorkloadGen rgen(rcfg);
  auto rwl = rgen.generate(4, 1);
  synopsis::BuildConfig bcfg;
  bcfg.svd.rank = 2;
  bcfg.svd.epochs_per_dim = 40;
  bcfg.size_ratio = 10.0;
  std::vector<reco::RecommenderComponent> rcomps;
  for (auto& subset : rwl.subsets) rcomps.emplace_back(std::move(subset), bcfg);
  reco::CfService reco(std::move(rcomps), rcfg.min_rating, rcfg.max_rating);

  auto service = private_service();
  auto& fx = fixture();
  ServerConfig cfg = test_server_config();
  std::string dir_template = ::testing::TempDir() + "at_rdelta_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template.data()), nullptr);
  cfg.delta_dir = dir_template;
  Server srv(*service, &reco, *fx.exec, cfg);
  srv.start();

  // Pin the pre-update state so the delta can be replayed against it.
  std::stringstream before;
  reco.component(1).save(before);
  const std::uint64_t v0 = reco.component(1).epoch_version();

  common::Rng rng(3);
  synopsis::UpdateBatch batch;
  for (int i = 0; i < 3; ++i) batch.added.push_back(rgen.sample_user(rng));
  reco.update_component(1, batch);
  const std::uint64_t v1 = reco.component(1).epoch_version();
  ASSERT_EQ(v1, v0 + 1);

  std::ifstream is(cfg.delta_dir + "/" + synopsis::delta_filename('r', 1, v1),
                   std::ios::binary);
  ASSERT_TRUE(is.good()) << "recommender delta not emitted";
  const auto delta = synopsis::load_delta(is);
  EXPECT_EQ(delta.component, 1u);
  EXPECT_EQ(delta.from_version, v0);
  EXPECT_EQ(delta.to_version, v1);

  // Deterministic replay: a replica at v0 plus the delta is byte-identical
  // to the live component.
  auto replica = reco::RecommenderComponent::load(before);
  replica.update(delta.batch);
  std::stringstream live_bytes, replica_bytes;
  reco.component(1).save(live_bytes);
  replica.save(replica_bytes);
  EXPECT_EQ(live_bytes.str(), replica_bytes.str());

  EXPECT_EQ(srv.snapshot().deltas_written, 1u);
  srv.stop();

  // stop() detached the sink symmetrically: further updates emit nothing.
  synopsis::UpdateBatch after_batch;
  after_batch.added.push_back(rgen.sample_user(rng));
  reco.update_component(0, after_batch);
  const std::uint64_t v2 = reco.component(0).epoch_version();
  std::ifstream after(
      cfg.delta_dir + "/" + synopsis::delta_filename('r', 0, v2),
      std::ios::binary);
  EXPECT_FALSE(after.good());
}

// ---------------------------------------------------------------------------
// Client backoff (PR-10 bugfix: the server's retry_after_ms hint is a
// floor, not a midpoint)
// ---------------------------------------------------------------------------

TEST(ClientBackoff, RetryAfterHintIsAFloorUnderAllJitter) {
  ClientConfig cfg;
  cfg.backoff_base_ms = 1.0;
  cfg.backoff_cap_ms = 20.0;
  // Old equal-jitter bug: uniform(0.5, 1.0) could shrink a 10ms hint to
  // 5ms and the client would hammer a shedding server early. Now jitter
  // only ever stretches the hint (up to 1.5x), capped.
  for (const double unit : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    const double d = backoff_delay_ms(cfg, 0, 10, unit);
    EXPECT_GE(d, 10.0) << "unit " << unit;
    EXPECT_LE(d, 15.0 + 1e-9) << "unit " << unit;
    EXPECT_LE(d, cfg.backoff_cap_ms) << "unit " << unit;
  }
  // A hint above the cap clamps to the cap exactly (no jitter range left).
  for (const double unit : {0.0, 0.5, 0.999})
    EXPECT_DOUBLE_EQ(backoff_delay_ms(cfg, 2, 50, unit), 20.0);
  // The attempt index is irrelevant when the server told us when to come
  // back.
  EXPECT_DOUBLE_EQ(backoff_delay_ms(cfg, 0, 10, 0.0),
                   backoff_delay_ms(cfg, 7, 10, 0.0));
}

TEST(ClientBackoff, TransportPathKeepsEqualJitterExponential) {
  ClientConfig cfg;
  cfg.backoff_base_ms = 1.0;
  cfg.backoff_cap_ms = 20.0;
  // No hint (transport error): unchanged equal-jitter exponential —
  // uniform in [base/2, base), doubling per attempt, capped.
  EXPECT_DOUBLE_EQ(backoff_delay_ms(cfg, 0, 0, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(cfg, 1, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(cfg, 2, 0, 1.0), 4.0);
  // Attempt 10 would be 1024ms; the cap bounds it before jitter.
  EXPECT_DOUBLE_EQ(backoff_delay_ms(cfg, 10, 0, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(backoff_delay_ms(cfg, 10, 0, 0.0), 10.0);
}

// ---------------------------------------------------------------------------
// Warm-standby takeover drill (PR-10 tentpole)
// ---------------------------------------------------------------------------

TEST_F(ServerTest, StandbyTakeoverServesIdenticalAnswersWithNoEpochGap) {
  auto service = private_service();
  auto& fx = fixture();
  ServerConfig cfg = test_server_config();
  std::string delta_template = ::testing::TempDir() + "at_tdelta_XXXXXX";
  std::string ckpt_template = ::testing::TempDir() + "at_tckpt_XXXXXX";
  ASSERT_NE(::mkdtemp(delta_template.data()), nullptr);
  ASSERT_NE(::mkdtemp(ckpt_template.data()), nullptr);
  cfg.delta_dir = delta_template;

  Server primary(*service, nullptr, *fx.exec, cfg);
  primary.start();
  primary.write_checkpoint(ckpt_template);

  // Stream retraining updates at the primary after the checkpoint — the
  // standby must catch up purely from the delta chain.
  Client client(client_config(primary.port()));
  Response up;
  std::string err;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ASSERT_TRUE(client.update(seed % 2, 2, 1, seed, 5000, &up, &err)) << err;
    ASSERT_EQ(up.status, Status::kOk) << up.text;
  }

  // Record the primary's answers and effective epoch, then kill it
  // mid-stream (no flush, no goodbye — the checkpoint plus the renamed
  // deltas are all the standby gets).
  std::vector<Response> want;
  for (std::size_t q = 0; q < 4; ++q) {
    Response resp;
    ASSERT_TRUE(
        client.search(fx.queries[q].terms, 5000, 10, &resp, &err))
        << err;
    ASSERT_EQ(resp.tier, Tier::kFull);
    want.push_back(resp);
  }
  const std::uint64_t primary_epoch = primary.snapshot().epoch_version;
  const std::uint64_t primary_deltas = primary.snapshot().deltas_written;
  ASSERT_EQ(primary_deltas, 6u);
  primary.stop();

  StandbyConfig scfg;
  scfg.checkpoint_dir = ckpt_template;
  scfg.delta_dir = delta_template;
  scfg.poll_interval_ms = 5.0;
  scfg.server = test_server_config();
  StandbyReplica standby(scfg);
  standby.load();
  standby.start();
  Server& promoted = standby.promote();

  // No epoch gap: the promoted replica reports exactly the epoch the
  // primary died at.
  EXPECT_EQ(promoted.snapshot().epoch_version, primary_epoch);
  EXPECT_EQ(standby.stats().deltas_applied, primary_deltas);
  EXPECT_EQ(standby.state(), StandbyState::kPromoted);

  // Identical answers: same docs, bit-identical scores (deterministic
  // replay plus the checkpointed global idf).
  Client failover(client_config(promoted.port()));
  for (std::size_t q = 0; q < want.size(); ++q) {
    Response resp;
    ASSERT_TRUE(
        failover.search(fx.queries[q].terms, 5000, 10, &resp, &err))
        << err;
    ASSERT_EQ(resp.tier, Tier::kFull);
    ASSERT_EQ(resp.docs.size(), want[q].docs.size()) << "query " << q;
    for (std::size_t i = 0; i < resp.docs.size(); ++i) {
      EXPECT_EQ(resp.docs[i].doc, want[q].docs[i].doc)
          << "query " << q << " rank " << i;
      EXPECT_DOUBLE_EQ(resp.docs[i].score, want[q].docs[i].score)
          << "query " << q << " rank " << i;
    }
  }

  // promote() is idempotent; stop() shuts the promoted server down too.
  EXPECT_EQ(&standby.promote(), &promoted);
  standby.stop();
  EXPECT_EQ(standby.state(), StandbyState::kStopped);
  EXPECT_EQ(standby.server(), nullptr);
}

TEST_F(ServerTest, ReplayUpdateMixInterleavesRetrainingWithQueries) {
  auto service = private_service();
  auto& fx = fixture();
  Server srv(*service, nullptr, *fx.exec, test_server_config());
  srv.start();

  ReplayConfig cfg;
  cfg.port = srv.port();
  cfg.num_clients = 3;
  cfg.requests_per_client = 20;
  cfg.deadline_ms = 2000;
  cfg.recommend_fraction = 0.0;
  cfg.update_fraction = 0.25;
  cfg.update_adds = 2;
  cfg.update_changes = 1;
  cfg.update_components = 2;
  cfg.corpus = test_corpus_config();
  const auto report = run_replay(cfg);
  EXPECT_EQ(report.requests, 60u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.server_errors, 0u);
  EXPECT_GT(report.ok_updates, 0u);
  EXPECT_GT(report.ok_full + report.ok_synopsis + report.ok_cached, 0u);
  EXPECT_EQ(report.ok_full + report.ok_synopsis + report.ok_cached +
                report.ok_updates,
            60u);
  EXPECT_NE(report.to_json().find("\"update\""), std::string::npos);

  // Same seed, same stream: the update mix is reproducible.
  const auto again = run_replay(cfg);
  EXPECT_EQ(again.ok_updates, report.ok_updates);

  EXPECT_EQ(srv.snapshot().updates,
            report.ok_updates + again.ok_updates);
  srv.stop();
}

TEST_F(ServerTest, RecommendWithoutServiceIsBadRequest) {
  auto& fx = fixture();
  Server srv(*fx.service, nullptr, *fx.exec, test_server_config());
  srv.start();
  Client client(client_config(srv.port()));
  Response resp;
  std::string err;
  ASSERT_TRUE(client.recommend(3, {{1, 4.0}, {2, 2.5}}, 100, &resp, &err))
      << err;
  EXPECT_EQ(resp.status, Status::kBadRequest);
  srv.stop();
}

}  // namespace
}  // namespace at::server
