void g() {
  if (n < sizeof v) return;
  std::memcpy(&v, p, n);
}
