// Clean fixture: one registered static failpoint, one dynamic-prefix site,
// a registered artifact kind + chunk, an allowed sleep, a guarded memcpy,
// and an AT_-prefixed env var.
void f() {
  AT_FAILPOINT("demo.site");
  failpoint::check_throw(("demo.shard." + std::to_string(i)).c_str());
  common::ArtifactWriter w(os, "DEMO", 1);
  w.chunk("META", meta);
  // atlint: allow(banned-sleep) — fixture proves the allow escape works.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const char* v = std::getenv("AT_DEMO");
}
