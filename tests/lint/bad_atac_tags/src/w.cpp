void f() {
  common::ArtifactWriter w(os, "NOPE", 1);
  common::ArtifactWriter w2(os, "OLDK", 2);
}
