int f() {
  std::mt19937 gen;
  return rand();
}
