const Kernels kScalarKernels = {
    &scalar_dot,
};
const Kernels kSse42Kernels = {
    &scalar_dot,
    &scalar_scale,
};
const Kernels kSse42Fallback = {
    &scalar_dot,
    &scalar_scale,
};
const Kernels kAvx2Kernels = {
    &scalar_dot,
    &scalar_scale,
};
const Kernels kAvx2Fallback = {
    &scalar_dot,
    &scalar_scale,
};
