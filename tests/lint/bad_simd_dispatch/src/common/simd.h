struct Kernels {
  double (*dot)(const double* a, const double* b, std::size_t n);
  void (*scale)(double* a, double s, std::size_t n);
};
