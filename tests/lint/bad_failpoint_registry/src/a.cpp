void f() {
  AT_FAILPOINT("unregistered.site");
  AT_FAILPOINT("dup.site");
}
