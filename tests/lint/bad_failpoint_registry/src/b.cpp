void g() {
  AT_FAILPOINT("dup.site");
}
