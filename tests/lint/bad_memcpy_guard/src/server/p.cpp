void f(void* dst, const void* src, unsigned long n) {
  std::memcpy(dst, src, n);
}
