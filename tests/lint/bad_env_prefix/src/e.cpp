const char* f() {
  return std::getenv("HOME");
}
