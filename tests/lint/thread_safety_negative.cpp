// Negative-compile demo for the thread-safety gate (ISSUE 7 acceptance):
// this file reads an AT_GUARDED_BY field WITHOUT holding its mutex and
// therefore MUST FAIL to compile under Clang with -Wthread-safety -Werror.
// It is deliberately outside the tests/*.cpp build glob;
// tools/check_thread_safety.sh compiles it expecting failure (and compiles
// the guarded variant below expecting success) as part of the
// clang-analysis CI job.
#include "common/thread_annotations.h"

#include <deque>

namespace {

class Account {
 public:
  void deposit(int amount) {
    at::common::MutexLock lock(mutex_);
    pending_.push_back(amount);
  }

  // BUG (on purpose): touches pending_ unlocked. Clang reports
  // "reading variable 'pending_' requires holding mutex 'mutex_'".
  bool unguarded_empty() const { return pending_.empty(); }

  bool guarded_empty() const {
    at::common::MutexLock lock(mutex_);
    return pending_.empty();
  }

 private:
  mutable at::common::Mutex mutex_;
  std::deque<int> pending_ AT_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
  Account a;
  a.deposit(1);
  return a.unguarded_empty() && a.guarded_empty() ? 0 : 1;
}
