// Warm-standby tailing edge cases (PR-10): the replica must ignore
// in-flight ".tmp" files and foreign names, absorb out-of-order arrival
// within the gap-patience window, convert a persistent hole (missing or
// torn delta) into a structured resync instead of silently skipping it,
// treat re-delivered history as a no-op, and retry injected apply
// failures without partial state. All cases drive poll_once() directly —
// deterministic, no tailer thread — against a delta stream recorded once
// from a real primary.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/sharded_executor.h"
#include "server/server.h"
#include "server/standby.h"
#include "services/search/service.h"
#include "synopsis/delta.h"
#include "workload/corpus.h"

namespace at::server {
namespace {

namespace fp = at::common::failpoint;
namespace fs = std::filesystem;

constexpr std::size_t kComponents = 2;
constexpr std::size_t kDeltasC0 = 4;  // deltas recorded for component 0
constexpr std::size_t kDeltasC1 = 2;  // ... and component 1

std::string make_temp_dir(const char* tag) {
  std::string dir_template = ::testing::TempDir() + tag + "_XXXXXX";
  if (::mkdtemp(dir_template.data()) == nullptr)
    throw std::runtime_error("mkdtemp failed");
  return dir_template;
}

// One primary, recorded once: a checkpoint plus a gapless delta chain on
// disk, and the live post-update service to converge against.
struct StreamFixture {
  std::unique_ptr<common::ShardedExecutor> exec;
  std::unique_ptr<search::SearchService> service;
  std::string ckpt_dir;
  std::string delta_dir;
  // Epoch version each component was checkpointed at; deltas run
  // (base[c], base[c] + deltas[c]].
  std::vector<std::uint64_t> base;

  std::string delta_name(std::size_t comp, std::uint64_t steps_past_base) const {
    return synopsis::delta_filename(
        'c', static_cast<std::uint32_t>(comp), base[comp] + steps_past_base);
  }
};

StreamFixture& stream_fixture() {
  static StreamFixture fx = [] {
    StreamFixture f;
    workload::CorpusConfig ccfg;
    ccfg.num_components = kComponents;
    ccfg.docs_per_component = 60;
    ccfg.vocab_size = 300;
    ccfg.num_topics = 6;
    ccfg.topic_vocab = 30;
    ccfg.seed = 11;
    workload::CorpusGen gen(ccfg);
    auto wl = gen.generate(4);
    synopsis::BuildConfig bcfg;
    bcfg.svd.rank = 2;
    bcfg.svd.epochs_per_dim = 20;
    bcfg.size_ratio = 10.0;
    std::vector<std::size_t> rows;
    std::vector<search::SearchComponent> comps;
    std::uint64_t docbase = 0;
    for (auto& shard : wl.shards) {
      const auto n = shard.rows();
      rows.push_back(n);
      comps.emplace_back(std::move(shard), docbase, bcfg);
      docbase += n;
    }
    f.exec = std::make_unique<common::ShardedExecutor>();
    f.service =
        std::make_unique<search::SearchService>(std::move(comps), 10);
    f.service->set_executor(f.exec.get());

    f.ckpt_dir = make_temp_dir("at_sb_ckpt");
    f.delta_dir = make_temp_dir("at_sb_delta");
    ServerConfig cfg;
    cfg.delta_dir = f.delta_dir;
    Server srv(*f.service, nullptr, *f.exec, cfg);
    srv.start();
    srv.write_checkpoint(f.ckpt_dir);
    for (std::size_t c = 0; c < kComponents; ++c)
      f.base.push_back(f.service->component(c).epoch_version());

    common::Rng rng(42);
    const auto batch = [&](std::size_t c) {
      synopsis::UpdateBatch b;
      b.added.push_back(gen.sample_doc(rng));
      b.changed.emplace_back(
          static_cast<std::uint32_t>(rng.uniform_index(rows[c])),
          gen.sample_doc(rng));
      return b;
    };
    for (std::size_t i = 0; i < kDeltasC0; ++i)
      f.service->update_component(0, batch(0));
    for (std::size_t i = 0; i < kDeltasC1; ++i)
      f.service->update_component(1, batch(1));
    srv.stop();
    return f;
  }();
  return fx;
}

/// A fresh stream directory holding the named fixture deltas (by steps
/// past each component's checkpoint base).
std::string stage_stream(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& picks) {
  auto& fx = stream_fixture();
  const std::string dir = make_temp_dir("at_sb_case");
  for (const auto& [comp, step] : picks) {
    const std::string name = fx.delta_name(comp, step);
    fs::copy_file(fx.delta_dir + "/" + name, dir + "/" + name);
  }
  return dir;
}

StandbyConfig standby_config(const std::string& delta_dir,
                             int gap_patience = 2) {
  StandbyConfig cfg;
  cfg.checkpoint_dir = stream_fixture().ckpt_dir;
  cfg.delta_dir = delta_dir;
  cfg.gap_patience = gap_patience;
  return cfg;
}

class StandbyTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::clear_all(); }
  void TearDown() override { fp::clear_all(); }
};

TEST_F(StandbyTest, LoadRebasesEveryComponentToCheckpointVersion) {
  auto& fx = stream_fixture();
  const std::string dir = stage_stream({});
  StandbyReplica standby(standby_config(dir));
  EXPECT_EQ(standby.state(), StandbyState::kCreated);
  standby.load();
  EXPECT_EQ(standby.state(), StandbyState::kTailing);
  ASSERT_NE(standby.search_service(), nullptr);
  for (std::size_t c = 0; c < kComponents; ++c)
    EXPECT_EQ(standby.search_service()->component(c).epoch_version(),
              fx.base[c])
        << "component " << c;
}

TEST_F(StandbyTest, IgnoresPartialAndForeignFilesWhileApplyingRealOnes) {
  auto& fx = stream_fixture();
  const std::string dir = stage_stream({{0, 1}});
  // In-flight write, foreign file, unknown kind, out-of-range component:
  // all invisible to the tailer.
  std::ofstream(dir + "/" + fx.delta_name(0, 2) + ".tmp") << "partial";
  std::ofstream(dir + "/README.txt") << "not a delta";
  std::ofstream(dir + "/delta_x0_000000000001.atac") << "bad kind";
  std::ofstream(dir + "/delta_c7_000000000001.atac") << "no such component";

  StandbyReplica standby(standby_config(dir));
  standby.load();
  EXPECT_EQ(standby.poll_once(), 1u);
  const auto s = standby.stats();
  EXPECT_EQ(s.state, StandbyState::kTailing);
  EXPECT_EQ(s.deltas_applied, 1u);
  EXPECT_GE(s.files_ignored, 4u);
  EXPECT_EQ(s.load_errors, 0u);
  EXPECT_TRUE(s.resync_reason.empty());
}

TEST_F(StandbyTest, OutOfOrderArrivalIsAbsorbedByGapPatience) {
  auto& fx = stream_fixture();
  // Version base+2 is late: base+3 became visible a poll earlier.
  const std::string dir = stage_stream({{0, 1}, {0, 3}});
  StandbyReplica standby(standby_config(dir, /*gap_patience=*/2));
  standby.load();

  EXPECT_EQ(standby.poll_once(), 1u);  // base+1 applies, base+3 waits
  auto s = standby.stats();
  EXPECT_EQ(s.state, StandbyState::kTailing);
  EXPECT_EQ(s.gaps_pending, 1u);

  // The straggler arrives before patience runs out: the chain heals.
  const std::string name = fx.delta_name(0, 2);
  fs::copy_file(fx.delta_dir + "/" + name, dir + "/" + name);
  EXPECT_EQ(standby.poll_once(), 2u);
  s = standby.stats();
  EXPECT_EQ(s.state, StandbyState::kTailing);
  EXPECT_EQ(s.deltas_applied, 3u);
  EXPECT_EQ(s.gaps_pending, 0u);
}

TEST_F(StandbyTest, PersistentGapTriggersResyncAndBlocksPromotion) {
  // base+2 never arrives.
  const std::string dir = stage_stream({{0, 1}, {0, 3}});
  StandbyReplica standby(standby_config(dir, /*gap_patience=*/2));
  standby.load();

  EXPECT_EQ(standby.poll_once(), 1u);
  EXPECT_EQ(standby.state(), StandbyState::kTailing);
  EXPECT_EQ(standby.poll_once(), 0u);  // patience exhausted
  const auto s = standby.stats();
  EXPECT_EQ(s.state, StandbyState::kResyncRequired);
  EXPECT_FALSE(s.resync_reason.empty());
  EXPECT_NE(standby.stats_json().find("resync_required"), std::string::npos);

  // Promotion must refuse: serving past a hole diverges forever.
  EXPECT_THROW(standby.promote(), std::runtime_error);
  EXPECT_EQ(standby.state(), StandbyState::kResyncRequired);

  // Resync is sticky: further polls do not resurrect tailing.
  EXPECT_EQ(standby.poll_once(), 0u);
  EXPECT_EQ(standby.state(), StandbyState::kResyncRequired);
}

TEST_F(StandbyTest, TornDeltaFeedsGapLogicInsteadOfBeingSkipped) {
  auto& fx = stream_fixture();
  const std::string dir = stage_stream({{0, 2}});
  // A well-named file that does not load (torn mid-write before the
  // tmp+rename discipline existed, or bit-rotted) must not be skipped
  // past — it occupies the very version the cursor needs next.
  std::ofstream(dir + "/" + fx.delta_name(0, 1), std::ios::binary)
      << "ATACgarbage";

  StandbyReplica standby(standby_config(dir, /*gap_patience=*/2));
  standby.load();
  EXPECT_EQ(standby.poll_once(), 0u);
  auto s = standby.stats();
  EXPECT_GE(s.load_errors, 1u);
  EXPECT_EQ(s.deltas_applied, 0u);
  EXPECT_EQ(s.state, StandbyState::kTailing);  // patience still running
  EXPECT_EQ(standby.poll_once(), 0u);
  EXPECT_EQ(standby.state(), StandbyState::kResyncRequired);
}

TEST_F(StandbyTest, RedeliveredDeltasAreNoOps) {
  const std::string dir =
      stage_stream({{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 1}, {1, 2}});
  StandbyReplica standby(standby_config(dir));
  standby.load();
  EXPECT_EQ(standby.poll_once(), kDeltasC0 + kDeltasC1);
  const std::uint64_t applied = standby.stats().deltas_applied;

  // Everything on disk is now history; polling again applies nothing and
  // leaves the epochs untouched.
  EXPECT_EQ(standby.poll_once(), 0u);
  EXPECT_EQ(standby.poll_once(), 0u);
  const auto s = standby.stats();
  EXPECT_EQ(s.deltas_applied, applied);
  EXPECT_EQ(s.state, StandbyState::kTailing);
  EXPECT_EQ(s.gaps_pending, 0u);
  EXPECT_TRUE(s.resync_reason.empty());
}

TEST_F(StandbyTest, ApplyFailpointIsRetriedWithoutPartialState) {
  auto& fx = stream_fixture();
  const std::string dir = stage_stream({{0, 1}, {0, 2}});
  StandbyReplica standby(standby_config(dir));
  standby.load();

  fp::set("standby.apply", "error");
  EXPECT_EQ(standby.poll_once(), 0u);
  auto s = standby.stats();
  EXPECT_GE(s.apply_failures, 1u);
  EXPECT_EQ(s.deltas_applied, 0u);
  EXPECT_EQ(s.state, StandbyState::kTailing);
  // The failpoint fires before any mutation: the component is untouched.
  EXPECT_EQ(standby.search_service()->component(0).epoch_version(),
            fx.base[0]);

  // An injected failure is not a gap — patience never converts it into a
  // resync, no matter how long it lasts.
  EXPECT_EQ(standby.poll_once(), 0u);
  EXPECT_EQ(standby.poll_once(), 0u);
  EXPECT_EQ(standby.state(), StandbyState::kTailing);

  fp::clear_all();
  EXPECT_EQ(standby.poll_once(), 2u);
  EXPECT_EQ(standby.search_service()->component(0).epoch_version(),
            fx.base[0] + 2);
}

TEST_F(StandbyTest, PromoteFailpointLeavesReplicaTailing) {
  const std::string dir = stage_stream({{0, 1}});
  StandbyReplica standby(standby_config(dir));
  standby.load();

  fp::set("standby.promote", "error");
  EXPECT_THROW(standby.promote(), std::exception);
  EXPECT_EQ(standby.state(), StandbyState::kTailing);
  fp::clear_all();

  // Still healthy: the aborted promotion left no partial side effects.
  EXPECT_EQ(standby.poll_once(), 1u);
  Server& srv = standby.promote();
  EXPECT_EQ(standby.state(), StandbyState::kPromoted);
  EXPECT_GT(srv.port(), 0);
  standby.stop();
}

TEST_F(StandbyTest, FullReplayConvergesByteIdenticallyToThePrimary) {
  auto& fx = stream_fixture();
  const std::string dir =
      stage_stream({{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 1}, {1, 2}});
  StandbyReplica standby(standby_config(dir));
  standby.load();
  EXPECT_EQ(standby.poll_once(), kDeltasC0 + kDeltasC1);

  for (std::size_t c = 0; c < kComponents; ++c) {
    EXPECT_EQ(standby.search_service()->component(c).epoch_version(),
              fx.service->component(c).epoch_version())
        << "component " << c;
    std::stringstream primary_bytes, replica_bytes;
    fx.service->component(c).save(primary_bytes);
    standby.search_service()->component(c).save(replica_bytes);
    EXPECT_EQ(primary_bytes.str(), replica_bytes.str())
        << "component " << c << " diverged";
  }
  EXPECT_EQ(standby.search_service()->data_version(),
            fx.service->data_version());
}

}  // namespace
}  // namespace at::server
