// Unified artifact store: container framing, the three exact f64 codecs
// (raw / shuffle / q8) across every SIMD dispatch tier, fuzz-style corrupt
// and truncated inputs (must throw cleanly — the suite runs under the
// ASan/UBSan CI jobs), and golden-file fixtures proving the legacy
// (pre-container) formats still load.
#include "common/artifact.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/binary_io.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/simd.h"
#include "services/recommender/component.h"
#include "services/search/component.h"
#include "synopsis/serialize.h"
#include "golden_fixtures.h"

namespace at::common {
namespace {

std::vector<simd::Tier> supported_tiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (simd::max_supported_tier() >= simd::Tier::kSse42)
    tiers.push_back(simd::Tier::kSse42);
  if (simd::max_supported_tier() >= simd::Tier::kAvx2)
    tiers.push_back(simd::Tier::kAvx2);
  return tiers;
}

/// Restores the entry dispatch tier on scope exit.
struct TierGuard {
  simd::Tier entry = simd::active_tier();
  ~TierGuard() { simd::set_tier(entry); }
};

/// Mixed-sign doubles with magnitudes in the few-octave band SVD factors
/// actually occupy (~0.05..2), the shuffle codec's target distribution.
std::vector<double> continuous_column(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = 0.05 + 2.0 * static_cast<double>((i * 37) % 100) / 100.0;
    v[i] = (i % 3 == 0 ? -1.0 : 1.0) * mag / 1.37;
  }
  return v;
}

/// The awkward case for shuffle: magnitudes spanning many octaves (the
/// exponent planes carry more distinct bytes). Exactness must still hold.
std::vector<double> wide_range_column(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mag = 0.01 + 0.4 * static_cast<double>((i * 37) % 100);
    v[i] = (i % 3 == 0 ? -1.0 : 1.0) * mag / 7.0;
  }
  return v;
}

std::vector<double> count_column(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(1 + (i * 13) % 200);
    if (i % 17 == 0) v[i] += 0.5;     // q8 exception
    if (i % 23 == 0) v[i] = 400.0;    // q8 exception (> 255)
  }
  return v;
}

std::vector<double> nasty_column() {
  return {0.0, -0.0, 1.0, -1.0, 255.0, 256.0,
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::max(),
          -std::numeric_limits<double>::min(), 1e-300, -1e300, 0.1, 3.0};
}

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << "value " << i << ": " << a[i] << " vs " << b[i];
  }
}

TEST(Crc32c, KnownVectorAndTierParity) {
  // The iSCSI test vector: CRC32C("123456789") == 0xE3069283.
  const char* s = "123456789";
  TierGuard guard;
  for (simd::Tier tier : supported_tiers()) {
    simd::set_tier(tier);
    EXPECT_EQ(crc32c(s, 9), 0xE3069283u) << simd::tier_name(tier);
  }
  // Tier parity on awkward lengths (tails around the 8-byte hw stride).
  std::vector<std::uint8_t> buf(1031);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 3));
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1031u}) {
    simd::set_tier(simd::Tier::kScalar);
    const std::uint32_t want = crc32c(buf.data(), len);
    for (simd::Tier tier : supported_tiers()) {
      simd::set_tier(tier);
      EXPECT_EQ(crc32c(buf.data(), len), want)
          << simd::tier_name(tier) << " len " << len;
    }
  }
}

TEST(ShuffleKernel, TierParityAndRoundTrip) {
  TierGuard guard;
  for (std::size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 16u, 33u, 200u}) {
    std::vector<std::uint64_t> in(n);
    for (std::size_t i = 0; i < n; ++i)
      in[i] = 0x0123456789ABCDEFull * (i + 1) + (i << 56);
    simd::set_tier(simd::Tier::kScalar);
    std::vector<std::uint8_t> want(8 * n);
    simd::shuffle_u64(want.data(), in.data(), n);
    for (simd::Tier tier : supported_tiers()) {
      simd::set_tier(tier);
      std::vector<std::uint8_t> got(8 * n);
      simd::shuffle_u64(got.data(), in.data(), n);
      EXPECT_EQ(got, want) << simd::tier_name(tier) << " n=" << n;
      std::vector<std::uint64_t> back(n);
      simd::unshuffle_u64(back.data(), got.data(), n);
      EXPECT_EQ(back, in) << simd::tier_name(tier) << " n=" << n;
    }
  }
}

TEST(F64Codecs, ExactRoundTripAllCodecsAllTiers) {
  TierGuard guard;
  const std::vector<std::vector<double>> columns = {
      {}, {42.0}, continuous_column(5), continuous_column(1000),
      wide_range_column(1000), count_column(300), nasty_column(),
      std::vector<double>(500, 0.0)};
  for (const auto& column : columns) {
    for (Codec codec : kAllCodecs) {
      for (simd::Tier enc_tier : supported_tiers()) {
        simd::set_tier(enc_tier);
        std::vector<std::uint8_t> bytes;
        encode_f64(bytes, column.data(), column.size(), codec);
        for (simd::Tier dec_tier : supported_tiers()) {
          simd::set_tier(dec_tier);
          std::vector<double> out(column.size());
          const std::uint8_t* end = decode_f64(
              bytes.data(), bytes.data() + bytes.size(), out.data(),
              out.size());
          EXPECT_EQ(end, bytes.data() + bytes.size())
              << codec_name(codec) << " left trailing bytes";
          expect_bits_equal(out, column);
        }
      }
    }
  }
}

TEST(F64Codecs, EncodingsAreTierIndependent) {
  // The *bytes* must match across tiers too (the shuffle kernel is a pure
  // permutation), so artifacts written on any machine compare equal.
  TierGuard guard;
  const auto column = continuous_column(777);
  for (Codec codec : kAllCodecs) {
    simd::set_tier(simd::Tier::kScalar);
    std::vector<std::uint8_t> want;
    encode_f64(want, column.data(), column.size(), codec);
    for (simd::Tier tier : supported_tiers()) {
      simd::set_tier(tier);
      std::vector<std::uint8_t> got;
      encode_f64(got, column.data(), column.size(), codec);
      EXPECT_EQ(got, want) << codec_name(codec) << " on "
                           << simd::tier_name(tier);
    }
  }
}

TEST(F64Codecs, ShuffleBeatsRawOnContinuousData) {
  const auto column = continuous_column(4096);
  std::vector<std::uint8_t> raw, shuffle;
  encode_f64(raw, column.data(), column.size(), Codec::kRaw);
  encode_f64(shuffle, column.data(), column.size(), Codec::kShuffle);
  EXPECT_LE(static_cast<double>(shuffle.size()),
            0.9 * static_cast<double>(raw.size()))
      << "shuffle " << shuffle.size() << " vs raw " << raw.size();
}

TEST(F64Codecs, Q8BeatsRawOnCountData) {
  auto column = count_column(4096);
  std::vector<std::uint8_t> raw, q8;
  encode_f64(raw, column.data(), column.size(), Codec::kRaw);
  encode_f64(q8, column.data(), column.size(), Codec::kQ8);
  EXPECT_LE(q8.size() * 2, raw.size());
}

TEST(ArtifactContainer, ChunkRoundTripAndKindChecks) {
  std::stringstream buf;
  {
    ArtifactWriter w(buf, "TSTK", 3);
    ChunkWriter meta;
    meta.u64(7);
    meta.str("hello");
    meta.vec_u32(std::vector<std::uint32_t>{1, 2, 3});
    w.chunk("META", meta);
    ChunkWriter data;
    data.vec_f64({1.5, -2.5, 1e308}, Codec::kShuffle);
    w.chunk("DATA", data);
    w.finish();
  }
  ArtifactReader r(buf, "TSTK");
  EXPECT_EQ(r.version(), 3u);
  ChunkReader meta = r.chunk("META");
  EXPECT_EQ(meta.u64(), 7u);
  EXPECT_EQ(meta.str(), "hello");
  EXPECT_EQ(meta.vec_u32(), (std::vector<std::uint32_t>{1, 2, 3}));
  meta.expect_consumed();
  ChunkReader data = r.chunk("DATA");
  EXPECT_EQ(data.vec_f64(), (std::vector<double>{1.5, -2.5, 1e308}));
  data.expect_consumed();
  r.finish();

  std::stringstream again(buf.str());
  EXPECT_THROW(ArtifactReader(again, "OTHR"), ArtifactError);
}

TEST(ArtifactContainer, WrongChunkTagThrows) {
  std::stringstream buf;
  ArtifactWriter w(buf, "TSTK", 1);
  w.chunk("AAAA", ChunkWriter{});
  w.finish();
  ArtifactReader r(buf, "TSTK");
  EXPECT_THROW(r.chunk("BBBB"), ArtifactError);
}

TEST(ArtifactFuzz, EveryTruncationThrows) {
  std::stringstream buf;
  linalg::save(buf, testing::golden_matrix());
  const std::string bytes = buf.str();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream cut(bytes.substr(0, len));
    EXPECT_THROW(linalg::load_matrix(cut), std::runtime_error) << "len " << len;
  }
}

TEST(ArtifactFuzz, EveryByteFlipThrowsOrRoundTrips) {
  std::stringstream buf;
  linalg::save(buf, testing::golden_svd_model());
  const std::string bytes = buf.str();
  const auto reference = testing::golden_svd_model();
  std::size_t flips_survived = 0;
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0xFF);
    std::stringstream in(mutated);
    try {
      const auto loaded = linalg::load_svd_model(in);
      // A surviving flip would have to beat the chunk CRCs; count it so a
      // framing hole shows up as a failure here instead of silence.
      ++flips_survived;
      EXPECT_EQ(loaded.train_rmse, reference.train_rmse);
    } catch (const std::runtime_error&) {
      // Expected: CRC mismatch / bad magic / truncation, never UB.
    }
  }
  EXPECT_EQ(flips_survived, 0u);
}

TEST(ArtifactFuzz, CorruptCodecPayloadsThrowCleanly) {
  // Mutate only the DATA chunk payload bytes but patch the CRC to match,
  // so the codec decoders themselves (not just the CRC) are exercised
  // against malformed plane modes, dict sizes and exception counts.
  const auto column = continuous_column(64);
  for (Codec codec : kAllCodecs) {
    std::vector<std::uint8_t> payload;
    payload.push_back(8);  // leading u64 count (little-endian 64)
    for (int i = 0; i < 7; ++i) payload.push_back(0);
    encode_f64(payload, column.data(), 8, codec);
    for (std::size_t pos = 8; pos < payload.size(); ++pos) {
      for (const std::uint8_t delta : {0x01, 0xFF}) {
        std::vector<std::uint8_t> mutated = payload;
        mutated[pos] = static_cast<std::uint8_t>(mutated[pos] ^ delta);
        ChunkReader reader{std::move(mutated)};
        try {
          const auto out = reader.vec_f64();
          EXPECT_EQ(out.size(), 8u);  // decoded *something* in bounds
        } catch (const std::runtime_error&) {
          // Clean rejection is equally fine; ASan/UBSan guard the rest.
        }
      }
    }
  }
}

TEST(ArtifactFuzz, ForgedRowEntryCountRejected) {
  // A CRC-valid SROW artifact whose per-row entry count dwarfs its
  // encoded bytes must throw before decode_list reserves for it.
  std::stringstream buf;
  {
    ArtifactWriter w(buf, "SROW", 1);
    ChunkWriter meta;
    meta.u64(8);  // cols
    meta.u64(1);  // rows
    w.chunk("META", meta);
    ChunkWriter body;
    body.u64(std::uint64_t{1} << 40);  // forged entry count
    body.blob(std::vector<std::uint8_t>{0x00});
    w.chunk("ROWS", body);
    w.finish();
  }
  EXPECT_THROW(synopsis::load_sparse_rows(buf), ArtifactError);
}

TEST(ArtifactFuzz, OverflowingMatrixDimensionsRejected) {
  // rows * cols wrapping to 0 must not pass the element-count check and
  // index out of bounds of the (empty) storage — in either format era.
  {
    std::stringstream buf;
    ArtifactWriter w(buf, "MATX", 1);
    ChunkWriter meta;
    meta.u64(std::uint64_t{1} << 32);
    meta.u64(std::uint64_t{1} << 32);
    w.chunk("META", meta);
    ChunkWriter data;
    data.vec_f64({}, Codec::kRaw);
    w.chunk("DATA", data);
    w.finish();
    EXPECT_THROW(linalg::load_matrix(buf), std::runtime_error);
  }
  {
    std::stringstream buf;
    BinaryWriter w(buf);
    w.magic("ATMX", 1);
    w.u64(std::uint64_t{1} << 32);
    w.u64(std::uint64_t{1} << 32);
    EXPECT_THROW(linalg::load_matrix(buf), std::runtime_error);
  }
}

TEST(ArtifactFuzz, ForgedF64CountsRejectedBeforeAllocating) {
  // A CRC-valid chunk whose f64 count is forged must throw ArtifactError
  // without first value-initializing gigabytes.
  const auto forged = [](std::uint64_t n, Codec codec) {
    ChunkWriter w;
    w.u64(n);
    w.u8(static_cast<std::uint8_t>(codec));
    ChunkReader r{std::vector<std::uint8_t>(w.data())};
    return r;  // copy elision; reader owns the forged payload
  };
  for (Codec codec : kAllCodecs) {
    auto r = forged(std::uint64_t{1} << 28 | 1, codec);
    EXPECT_THROW(r.vec_f64(), ArtifactError) << codec_name(codec);
  }
  // Payload-relative bounds for the codecs with a per-value byte floor.
  auto raw = forged(1000, Codec::kRaw);  // 1000 doubles, 0 payload bytes
  EXPECT_THROW(raw.vec_f64(), ArtifactError);
  auto q8 = forged(1000, Codec::kQ8);
  EXPECT_THROW(q8.vec_f64(), ArtifactError);
}

// ---------------------------------------------------------------------------
// Golden legacy fixtures (generated by the pre-container writers; see
// tests/golden_fixtures.h for the recipes and generation notes).
// ---------------------------------------------------------------------------

std::ifstream open_golden(const std::string& name) {
  const std::string path = std::string(AT_TEST_DATA_DIR) + "/golden/" + name;
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing golden fixture " << path;
  return is;
}

void expect_rows_equal(const synopsis::SparseRows& got,
                       const synopsis::SparseRows& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::uint32_t r = 0; r < want.rows(); ++r) {
    const auto a = got.row(r);
    const auto b = want.row(r);
    ASSERT_EQ(a.size(), b.size()) << "row " << r;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.cols()[i], b.cols()[i]) << "row " << r;
      EXPECT_EQ(a.vals()[i], b.vals()[i]) << "row " << r;
    }
  }
}

void expect_matrix_bits_equal(const linalg::Matrix& got,
                              const linalg::Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t r = 0; r < want.rows(); ++r) {
    for (std::size_t c = 0; c < want.cols(); ++c) {
      const double a = got(r, c);
      const double b = want(r, c);
      EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
          << r << "," << c << ": " << a << " vs " << b;
    }
  }
}

TEST(GoldenLegacy, SparseRowsV1) {
  auto is = open_golden("sparse_rows_v1.bin");
  expect_rows_equal(synopsis::load_sparse_rows(is), testing::golden_rows());
}

TEST(GoldenLegacy, SparseRowsV2) {
  // The v2 fixture stores two wide rows (gaps > 255, hence varint blocks —
  // the v2-era shape); literals mirror the generator.
  auto is = open_golden("sparse_rows_v2.bin");
  const auto rows = synopsis::load_sparse_rows(is);
  ASSERT_EQ(rows.rows(), 2u);
  EXPECT_EQ(rows.cols(), 2048u);
  const synopsis::SparseVector want0{{300, 2.5}, {1200, 3.0}, {1999, 300.25}};
  const synopsis::SparseVector want1{{0, 1.0}, {600, 42.0}};
  EXPECT_EQ(rows.row(0), want0);
  EXPECT_EQ(rows.row(1), want1);
}

TEST(GoldenLegacy, SparseRowsV3) {
  auto is = open_golden("sparse_rows_v3.bin");
  expect_rows_equal(synopsis::load_sparse_rows(is), testing::golden_rows());
}

TEST(GoldenLegacy, MatrixV1) {
  auto is = open_golden("matrix_v1.bin");
  expect_matrix_bits_equal(linalg::load_matrix(is), testing::golden_matrix());
}

TEST(GoldenLegacy, SvdModelV1) {
  auto is = open_golden("svd_model_v1.bin");
  const auto got = linalg::load_svd_model(is);
  const auto want = testing::golden_svd_model();
  EXPECT_EQ(got.train_rmse, want.train_rmse);
  EXPECT_EQ(got.global_mean, want.global_mean);
  EXPECT_EQ(got.row_bias, want.row_bias);
  EXPECT_EQ(got.col_bias, want.col_bias);
  expect_matrix_bits_equal(got.row_factors, want.row_factors);
  expect_matrix_bits_equal(got.col_factors, want.col_factors);
}

TEST(GoldenLegacy, IndexFileV1) {
  auto is = open_golden("index_file_v1.bin");
  const auto got = synopsis::load_index_file(is);
  const auto want = testing::golden_index_file();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_EQ(got.groups()[g].node_id, want.groups()[g].node_id);
    EXPECT_EQ(got.groups()[g].version, want.groups()[g].version);
    EXPECT_EQ(got.groups()[g].members, want.groups()[g].members);
  }
}

TEST(GoldenLegacy, SynopsisV1) {
  auto is = open_golden("synopsis_v1.bin");
  const auto got = synopsis::load_synopsis(is);
  const auto want = testing::golden_synopsis();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_EQ(got.points[g].node_id, want.points[g].node_id);
    EXPECT_EQ(got.points[g].member_count, want.points[g].member_count);
    EXPECT_EQ(got.points[g].features, want.points[g].features);
    EXPECT_EQ(got.points[g].support, want.points[g].support);
  }
}

TEST(GoldenLegacy, StructureV1MatchesDeterministicRebuild) {
  auto is = open_golden("structure_v1.bin");
  auto got = synopsis::load_structure(is);
  const auto want = testing::golden_structure();
  EXPECT_EQ(got.level, want.level);
  expect_matrix_bits_equal(got.reduced, want.reduced);
  expect_matrix_bits_equal(got.svd.row_factors, want.svd.row_factors);
  expect_matrix_bits_equal(got.svd.col_factors, want.svd.col_factors);
  ASSERT_EQ(got.index.size(), want.index.size());
  for (std::size_t g = 0; g < want.index.size(); ++g) {
    EXPECT_EQ(got.index.groups()[g].members, want.index.groups()[g].members);
    EXPECT_EQ(got.index.groups()[g].version, want.index.groups()[g].version);
  }
  got.tree.check_invariants();
  EXPECT_NO_THROW(got.index.validate_partition(testing::golden_rows().rows()));
}

TEST(GoldenLegacy, SearchComponentV1ScoresMatchFreshBuild) {
  auto is = open_golden("search_component_v1.bin");
  const auto loaded = search::SearchComponent::load(is);
  search::SearchComponent fresh(testing::golden_rows(), 1000,
                                testing::golden_build_config(),
                                search::ScorerParams{}, nullptr);
  const search::SearchRequest request{{1, 5, 12}};
  const auto got = loaded.exact_topk(request, 5);
  const auto want = fresh.exact_topk(request, 5);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc);
    EXPECT_EQ(got[i].score, want[i].score);
  }
}

TEST(GoldenLegacy, RecommenderComponentV1AnalyzesLikeFreshBuild) {
  auto is = open_golden("recommender_component_v1.bin");
  const auto loaded = reco::RecommenderComponent::load(is);
  reco::RecommenderComponent fresh(testing::golden_rows(),
                                   testing::golden_build_config(), nullptr);
  const auto request =
      reco::CfRequest::make({{2, 4.0}, {9, 2.0}, {16, 5.0}}, 5);
  const auto got = loaded.analyze(request).exact();
  const auto want = fresh.analyze(request).exact();
  EXPECT_EQ(got.weighted_dev, want.weighted_dev);
  EXPECT_EQ(got.weight_abs, want.weight_abs);
  EXPECT_EQ(got.neighbors, want.neighbors);
}

// ---------------------------------------------------------------------------
// Codec edge-case property tests: IEEE special values through the q8
// exception table and the shuffle exponent/mantissa bit-split. Every codec
// must reproduce the exact bit patterns (NaN payloads included) in every
// SIMD dispatch tier, and the encoded bytes must not depend on the tier.
// ---------------------------------------------------------------------------

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

double from_bits(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof v);
  return v;
}

/// Columns of pure and salted special values. Uniform columns steer the
/// shuffle encoder toward its dict/RLE plane layout, continuous ones
/// toward the exponent/mantissa bit-split, count-like ones toward q8's
/// quantized path — so the specials hit every decoder branch.
std::vector<std::pair<const char*, std::vector<double>>> special_columns() {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double snan = from_bits(0x7ff4deadbeef0001ull);  // signaling payload
  const double nnan = from_bits(0xfff8000000000123ull);  // negative, payload
  const double inf = std::numeric_limits<double>::infinity();
  const double dmin = std::numeric_limits<double>::denorm_min();

  std::vector<std::pair<const char*, std::vector<double>>> cols;
  cols.emplace_back("all_nan", std::vector<double>(97, qnan));
  cols.emplace_back("nan_payloads", std::vector<double>{qnan, snan, nnan,
                                                        qnan, snan, nnan});
  cols.emplace_back("all_inf", std::vector<double>(64, inf));
  cols.emplace_back("mixed_inf", std::vector<double>{inf, -inf, inf, -inf});
  cols.emplace_back("neg_zero", std::vector<double>(130, -0.0));
  cols.emplace_back("zero_signs", std::vector<double>{0.0, -0.0, 0.0, -0.0});
  cols.emplace_back("all_denormal", [&] {
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
      v.push_back(from_bits(static_cast<std::uint64_t>(i * 977)));
    return v;
  }());
  cols.emplace_back("denormal_extremes",
                    std::vector<double>{
                        dmin, -dmin,
                        from_bits(0x000fffffffffffffull),   // largest subnormal
                        from_bits(0x800fffffffffffffull),   // negative largest
                        std::numeric_limits<double>::min(), // smallest normal
                        0.0});
  // Continuous data (forces the exp-split layout) salted with specials.
  cols.emplace_back("continuous_salted", [&] {
    auto v = continuous_column(512);
    for (std::size_t i = 0; i < v.size(); i += 37) v[i] = qnan;
    for (std::size_t i = 13; i < v.size(); i += 53) v[i] = (i % 2) ? inf : -inf;
    for (std::size_t i = 7; i < v.size(); i += 41) v[i] = -0.0;
    for (std::size_t i = 3; i < v.size(); i += 61) v[i] = dmin * double(i);
    return v;
  }());
  // Count-like data (q8's quantized path) salted with specials, which must
  // all land in the exception table.
  cols.emplace_back("counts_salted", [&] {
    auto v = count_column(512);
    for (std::size_t i = 0; i < v.size(); i += 29) v[i] = snan;
    for (std::size_t i = 11; i < v.size(); i += 43) v[i] = -inf;
    for (std::size_t i = 5; i < v.size(); i += 31) v[i] = -0.0;
    for (std::size_t i = 2; i < v.size(); i += 59) v[i] = dmin;
    return v;
  }());
  return cols;
}

TEST(CodecSpecialValues, ExactBitsPerCodecPerTier) {
  TierGuard guard;
  for (const auto& [name, column] : special_columns()) {
    for (Codec codec : kAllCodecs) {
      for (simd::Tier enc_tier : supported_tiers()) {
        simd::set_tier(enc_tier);
        std::vector<std::uint8_t> bytes;
        encode_f64(bytes, column.data(), column.size(), codec);
        for (simd::Tier dec_tier : supported_tiers()) {
          simd::set_tier(dec_tier);
          std::vector<double> out(column.size());
          const std::uint8_t* end = decode_f64(
              bytes.data(), bytes.data() + bytes.size(), out.data(),
              out.size());
          ASSERT_EQ(end, bytes.data() + bytes.size())
              << name << " via " << codec_name(codec);
          for (std::size_t i = 0; i < column.size(); ++i) {
            ASSERT_EQ(bits_of(out[i]), bits_of(column[i]))
                << name << " via " << codec_name(codec) << " enc "
                << simd::tier_name(enc_tier) << " dec "
                << simd::tier_name(dec_tier) << " value " << i;
          }
        }
      }
    }
  }
}

TEST(CodecSpecialValues, EncodedBytesTierIndependent) {
  TierGuard guard;
  for (const auto& [name, column] : special_columns()) {
    for (Codec codec : kAllCodecs) {
      simd::set_tier(simd::Tier::kScalar);
      std::vector<std::uint8_t> want;
      encode_f64(want, column.data(), column.size(), codec);
      for (simd::Tier tier : supported_tiers()) {
        simd::set_tier(tier);
        std::vector<std::uint8_t> got;
        encode_f64(got, column.data(), column.size(), codec);
        EXPECT_EQ(got, want) << name << " via " << codec_name(codec) << " on "
                             << simd::tier_name(tier);
      }
    }
  }
}

TEST(CodecSpecialValues, RandomBitPatternsRoundTripExactly) {
  // Property test: ANY 64-bit pattern — including trap representations of
  // other types' views — survives every codec bit-exactly.
  common::Rng rng(0xc0dec);
  std::vector<double> column(2048);
  for (auto& v : column) v = from_bits(rng.next());
  for (Codec codec : kAllCodecs) {
    std::vector<std::uint8_t> bytes;
    encode_f64(bytes, column.data(), column.size(), codec);
    std::vector<double> out(column.size());
    decode_f64(bytes.data(), bytes.data() + bytes.size(), out.data(),
               out.size());
    for (std::size_t i = 0; i < column.size(); ++i) {
      ASSERT_EQ(bits_of(out[i]), bits_of(column[i]))
          << codec_name(codec) << " value " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Golden lock for the CURRENT (ATAC container) writers: the checked-in
// bytes were produced by today's writers with the codec pinned; these tests
// fail the moment a writer's output drifts, making the next format change
// a conscious version bump (regenerate with AT_REGEN_GOLDEN=1, inspect the
// diff, bump the kind version) instead of an accident. The paired load
// tests keep proving the files still deserialize to the fixtures.
// ---------------------------------------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(AT_TEST_DATA_DIR) + "/golden/" + name;
}

/// Serializes via `write`, regenerates the file when AT_REGEN_GOLDEN is
/// set, and asserts the bytes equal the checked-in golden.
template <typename WriteFn>
std::string check_current_golden(const std::string& name, WriteFn&& write) {
  std::ostringstream os(std::ios::binary);
  write(os);
  const std::string bytes = os.str();
  const std::string path = golden_path(name);
  if (std::getenv("AT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(out.good()) << "could not regenerate " << path;
  }
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing current-writer golden " << path
                         << " (regenerate with AT_REGEN_GOLDEN=1)";
  std::ostringstream disk;
  disk << is.rdbuf();
  EXPECT_EQ(bytes.size(), disk.str().size()) << name;
  EXPECT_TRUE(bytes == disk.str())
      << name << ": writer output drifted from the checked-in golden — if "
      << "intentional, bump the kind version and regenerate";
  return bytes;
}

TEST(CurrentGolden, MatrixBytesStableAndLoads) {
  check_current_golden("atac_matrix_v1.bin", [](std::ostream& os) {
    linalg::save(os, testing::golden_matrix(), Codec::kShuffle);
  });
  auto is = open_golden("atac_matrix_v1.bin");
  expect_matrix_bits_equal(linalg::load_matrix(is), testing::golden_matrix());
}

TEST(CurrentGolden, SvdModelBytesStableAndLoads) {
  check_current_golden("atac_svd_model_v1.bin", [](std::ostream& os) {
    linalg::save(os, testing::golden_svd_model(), Codec::kShuffle);
  });
  auto is = open_golden("atac_svd_model_v1.bin");
  const auto got = linalg::load_svd_model(is);
  const auto want = testing::golden_svd_model();
  EXPECT_EQ(got.train_rmse, want.train_rmse);
  EXPECT_EQ(got.global_mean, want.global_mean);
  EXPECT_EQ(got.row_bias, want.row_bias);
  EXPECT_EQ(got.col_bias, want.col_bias);
  expect_matrix_bits_equal(got.row_factors, want.row_factors);
  expect_matrix_bits_equal(got.col_factors, want.col_factors);
}

TEST(CurrentGolden, SparseRowsBytesStableAndLoads) {
  check_current_golden("atac_sparse_rows_v1.bin", [](std::ostream& os) {
    synopsis::save(os, testing::golden_rows());
  });
  auto is = open_golden("atac_sparse_rows_v1.bin");
  expect_rows_equal(synopsis::load_sparse_rows(is), testing::golden_rows());
}

TEST(CurrentGolden, IndexFileBytesStableAndLoads) {
  check_current_golden("atac_index_file_v1.bin", [](std::ostream& os) {
    synopsis::save(os, testing::golden_index_file());
  });
  auto is = open_golden("atac_index_file_v1.bin");
  const auto got = synopsis::load_index_file(is);
  const auto want = testing::golden_index_file();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_EQ(got.groups()[g].node_id, want.groups()[g].node_id);
    EXPECT_EQ(got.groups()[g].version, want.groups()[g].version);
    EXPECT_EQ(got.groups()[g].members, want.groups()[g].members);
  }
}

TEST(CurrentGolden, SynopsisBytesStableAndLoads) {
  check_current_golden("atac_synopsis_v1.bin", [](std::ostream& os) {
    synopsis::save(os, testing::golden_synopsis());
  });
  auto is = open_golden("atac_synopsis_v1.bin");
  const auto got = synopsis::load_synopsis(is);
  const auto want = testing::golden_synopsis();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t g = 0; g < want.size(); ++g) {
    EXPECT_EQ(got.points[g].features, want.points[g].features);
    EXPECT_EQ(got.points[g].support, want.points[g].support);
  }
}

TEST(CurrentGolden, StructureBytesStableAndLoads) {
  // golden_structure runs the deterministic-mode build, which is
  // bit-reproducible by contract — so the serialized bytes are too.
  check_current_golden("atac_structure_v1.bin", [](std::ostream& os) {
    synopsis::save(os, testing::golden_structure(), Codec::kShuffle);
  });
  auto is = open_golden("atac_structure_v1.bin");
  auto got = synopsis::load_structure(is);
  const auto want = testing::golden_structure();
  EXPECT_EQ(got.level, want.level);
  expect_matrix_bits_equal(got.reduced, want.reduced);
  expect_matrix_bits_equal(got.svd.row_factors, want.svd.row_factors);
  got.tree.check_invariants();
}

TEST(CurrentGolden, SearchComponentBytesStableAndLoads) {
  const auto build = [] {
    return search::SearchComponent(testing::golden_rows(), 1000,
                                   testing::golden_build_config(),
                                   search::ScorerParams{}, nullptr);
  };
  check_current_golden("atac_search_component_v1.bin",
                       [&](std::ostream& os) {
                         build().save(os, Codec::kShuffle);
                       });
  auto is = open_golden("atac_search_component_v1.bin");
  const auto loaded = search::SearchComponent::load(is);
  const auto fresh = build();
  const search::SearchRequest request{{1, 5, 12}};
  const auto got = loaded.exact_topk(request, 5);
  const auto want = fresh.exact_topk(request, 5);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc);
    EXPECT_EQ(got[i].score, want[i].score);
  }
}

TEST(CurrentGolden, RecommenderComponentBytesStableAndLoads) {
  const auto build = [] {
    return reco::RecommenderComponent(testing::golden_rows(),
                                      testing::golden_build_config(),
                                      nullptr);
  };
  check_current_golden("atac_recommender_component_v1.bin",
                       [&](std::ostream& os) {
                         build().save(os, Codec::kShuffle);
                       });
  auto is = open_golden("atac_recommender_component_v1.bin");
  const auto loaded = reco::RecommenderComponent::load(is);
  const auto fresh = build();
  const auto request =
      reco::CfRequest::make({{2, 4.0}, {9, 2.0}, {16, 5.0}}, 5);
  const auto got = loaded.analyze(request).exact();
  const auto want = fresh.analyze(request).exact();
  EXPECT_EQ(got.weighted_dev, want.weighted_dev);
  EXPECT_EQ(got.weight_abs, want.weight_abs);
  EXPECT_EQ(got.neighbors, want.neighbors);
}

// New-format snapshots round-trip through every codec with bit-identical
// scores (acceptance: parity across codecs).
TEST(ComponentSnapshots, AllCodecsScoreBitIdentical) {
  search::SearchComponent fresh(testing::golden_rows(), 0,
                                testing::golden_build_config(),
                                search::ScorerParams{}, nullptr);
  const search::SearchRequest request{{1, 5, 12, 30}};
  const auto want = fresh.exact_topk(request, 6);
  for (Codec codec : kAllCodecs) {
    std::stringstream buf;
    fresh.save(buf, codec);
    const auto loaded = search::SearchComponent::load(buf);
    const auto got = loaded.exact_topk(request, 6);
    ASSERT_EQ(got.size(), want.size()) << codec_name(codec);
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].doc, want[i].doc) << codec_name(codec);
      EXPECT_EQ(got[i].score, want[i].score) << codec_name(codec);
    }
  }
}

// Failed loads must be all-or-nothing: SearchComponent::load builds into
// a temporary, so any failure — truncation at every length, or an
// injected artifact.chunk fault mid-load — throws the layer's structured
// ArtifactError and leaves previously loaded state fully usable with
// bit-identical scores.
TEST(ComponentSnapshots, StateUnchangedAfterEveryFailedLoad) {
  search::SearchComponent comp(testing::golden_rows(), 0,
                               testing::golden_build_config(),
                               search::ScorerParams{}, nullptr);
  const search::SearchRequest request{{1, 5, 12, 30}};
  const auto want = comp.exact_topk(request, 6);
  std::stringstream buf;
  comp.save(buf);
  const std::string bytes = buf.str();

  auto expect_unchanged = [&] {
    const auto got = comp.exact_topk(request, 6);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].doc, want[i].doc);
      ASSERT_EQ(got[i].score, want[i].score);  // bitwise
    }
  };

  // Every truncation throws a structured error, never partially applies.
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::stringstream cut(bytes.substr(0, len));
    try {
      auto loaded = search::SearchComponent::load(cut);
      FAIL() << "truncation at " << len << " loaded";
    } catch (const ArtifactError&) {
    } catch (const std::exception& e) {
      FAIL() << "non-artifact error at " << len << ": " << e.what();
    }
  }
  expect_unchanged();

  // Injected chunk-read faults surface as ArtifactError too (the
  // failpoint layer is translated at the artifact boundary), and clear
  // cleanly.
  failpoint::clear_all();
  failpoint::set("artifact.chunk", "error:x1");
  {
    std::stringstream in(bytes);
    EXPECT_THROW(search::SearchComponent::load(in), ArtifactError);
  }
  expect_unchanged();
  failpoint::clear_all();
  {
    std::stringstream in(bytes);
    EXPECT_NO_THROW(search::SearchComponent::load(in));
  }
}

}  // namespace
}  // namespace at::common
